package obs

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCardinalityCap(t *testing.T) {
	r := NewRegistry()
	r.SetMaxCardinality(3)

	a := r.Counter("a_total")
	b := r.Gauge("b")
	c := r.Histogram("c_seconds", nil)
	if a == nil || b == nil || c == nil {
		t.Fatalf("instruments under the limit must be real")
	}
	if got := r.Cardinality(); got != 3 {
		t.Fatalf("Cardinality() = %d, want 3", got)
	}

	// The fourth identity is refused as a nil (no-op) instrument.
	d := r.Counter("d_total")
	if d != nil {
		t.Fatalf("counter past the limit should be nil, got %v", d)
	}
	d.Inc() // must not panic
	if got := r.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}

	// Existing identities are still handed out.
	if r.Counter("a_total") != a {
		t.Fatalf("existing identity must still resolve at the limit")
	}

	// Gauges and histograms are refused the same way.
	if g := r.Gauge("e"); g != nil {
		t.Fatalf("gauge past the limit should be nil")
	}
	if h := r.Histogram("f_seconds", nil); h != nil {
		t.Fatalf("histogram past the limit should be nil")
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}

	// The drop count surfaces in snapshots and Prometheus output.
	snap := r.Snapshot()
	if snap.Counters[DroppedMetricName] != 3 {
		t.Fatalf("snapshot dropped counter = %d, want 3", snap.Counters[DroppedMetricName])
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), DroppedMetricName+" 3") {
		t.Fatalf("WriteProm missing dropped counter:\n%s", sb.String())
	}

	// Raising the limit admits new identities again.
	r.SetMaxCardinality(10)
	if r.Counter("d_total") == nil {
		t.Fatalf("counter should be admitted after the limit was raised")
	}
}

func TestRegistryUnboundedCardinality(t *testing.T) {
	r := NewRegistry()
	r.SetMaxCardinality(0) // unbounded
	for i := 0; i < 100; i++ {
		if r.Counter(fmt.Sprintf("m%d_total", i)) == nil {
			t.Fatalf("unbounded registry refused identity %d", i)
		}
	}
	if got := r.Cardinality(); got != 100 {
		t.Fatalf("Cardinality() = %d, want 100", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0", got)
	}
}

func TestRegistryCapExactUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	const limit = 64
	r.SetMaxCardinality(limit)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.Counter(fmt.Sprintf("w%d_m%d_total", g, i))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Cardinality(); got != limit {
		t.Fatalf("Cardinality() = %d, want exactly %d", got, limit)
	}
	if got := r.Dropped(); got != 16*50-limit {
		t.Fatalf("Dropped() = %d, want %d", got, 16*50-limit)
	}
}

// mutexRegistry is the pre-sharding design (one RWMutex over one map),
// kept here as the benchmark baseline the lock-striped Registry is
// measured against.
type mutexRegistry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

func newMutexRegistry() *mutexRegistry {
	return &mutexRegistry{counters: make(map[string]*Counter)}
}

func (r *mutexRegistry) Counter(name string, labelPairs ...string) *Counter {
	key := name + fmtLabels(labelPairs)
	r.mu.RLock()
	c, ok := r.counters[key]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[key]; ok {
		return c
	}
	c = &Counter{name: name}
	r.counters[key] = c
	return c
}

// counterSource abstracts the registry under benchmark so both the
// sharded Registry and the single-mutex baseline run identical loops.
type counterSource interface {
	Counter(name string, labelPairs ...string) *Counter
}

// benchNames are the metric identities the writer benchmarks cycle
// through: 256 distinct per-node counters, precomputed so the measured
// op is the registry's own lookup+increment hot path rather than label
// formatting.
var benchNames = func() [256]string {
	var names [256]string
	for i := range names {
		names[i] = fmt.Sprintf("node%04d_bytes_total", i)
	}
	return names
}()

// benchLabels are the node label values for the realistic labeled
// variant, where every lookup also pays for canonical label formatting.
var benchLabels = func() [256]string {
	var vals [256]string
	for i := range vals {
		vals[i] = fmt.Sprintf("ipfs-%04d", i)
	}
	return vals
}()

// runWriters10k drives the lookup+increment hot path from ~10k
// concurrent writers (SetParallelism multiplies GOMAXPROCS). On
// GOMAXPROCS=1 both registries degenerate to the uncontended path and
// measure only constant overheads; the striping win (>4x against the
// single mutex) needs real parallelism to show up.
func runWriters10k(b *testing.B, src counterSource, labeled bool) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 1 {
		procs = 1
	}
	b.SetParallelism((10000 + procs - 1) / procs)
	b.RunParallel(func(pb *testing.PB) {
		id := 0
		for pb.Next() {
			i := id % len(benchNames)
			if labeled {
				src.Counter("bytes_uploaded_total", "node", benchLabels[i]).Inc()
			} else {
				src.Counter(benchNames[i]).Inc()
			}
			id++
		}
	})
}

// BenchmarkRegistryWriters10k compares the sharded registry against the
// pre-sharding single-mutex design at ~10k concurrent writers:
//
//	go test ./internal/obs -run xxx -bench 'RegistryWriters10k' -cpu 8
//
// The "hot" variant isolates lock behavior (precomputed keys); the
// "labeled" variant is the realistic call site that also formats a
// label block per lookup.
func BenchmarkRegistryWriters10k(b *testing.B) {
	b.Run("hot/sharded", func(b *testing.B) { runWriters10k(b, NewRegistry(), false) })
	b.Run("hot/single-mutex", func(b *testing.B) { runWriters10k(b, newMutexRegistry(), false) })
	b.Run("labeled/sharded", func(b *testing.B) { runWriters10k(b, NewRegistry(), true) })
	b.Run("labeled/single-mutex", func(b *testing.B) { runWriters10k(b, newMutexRegistry(), true) })
}

// BenchmarkRegistrySingleWriter guards the uncontended path: sharding
// must not slow down the one-goroutine case beyond the shard-hash cost.
func BenchmarkRegistrySingleWriter(b *testing.B) {
	run := func(b *testing.B, src counterSource) {
		for i := 0; i < b.N; i++ {
			src.Counter("bytes_uploaded_total", "node", benchLabels[i%len(benchLabels)]).Inc()
		}
	}
	b.Run("sharded", func(b *testing.B) { run(b, NewRegistry()) })
	b.Run("single-mutex", func(b *testing.B) { run(b, newMutexRegistry()) })
}
