package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the span half of the observability substrate: causal,
// timestamped intervals that reconstruct *why* an iteration took as long
// as it did, where the metrics registry only says *that* it did. The
// paper's headline figures (§V, Figs. 5-7) are latency breakdowns — how an
// iteration splits between gradient upload, storage-side merging,
// aggregator download and global-model publication — and spans are the
// primitive those breakdowns fold out of.
//
// A trace is identified by (session, iteration): every span of one FL
// iteration, across every process and node, shares that pair. Within a
// trace, spans form trees via parent span IDs; causally related spans in
// *other* roles (an aggregator folding in a trainer's gradient) are
// connected with links. Contexts cross process boundaries as a small
// JSON/gob-friendly envelope (SpanContext) threaded through directory
// records and storage RPCs.

// SpanContext identifies one span within a trace. The trace ID is the
// (Session, Iter) pair; SpanID is unique per span; Parent is the span ID
// of the enclosing span (empty for roots). The zero SpanContext is
// invalid and means "no context".
type SpanContext struct {
	Session string `json:"session"`
	Iter    int    `json:"iter"`
	SpanID  string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
}

// Valid reports whether the context identifies a span.
func (c SpanContext) Valid() bool { return c.SpanID != "" }

// Child derives a fresh context for a child span of c, in the same trace.
func (c SpanContext) Child() SpanContext {
	return SpanContext{Session: c.Session, Iter: c.Iter, SpanID: NewSpanID(), Parent: c.SpanID}
}

// spanEntropy distinguishes span IDs minted by different processes, so
// traces merged from several nodes cannot collide; spanSeq distinguishes
// IDs within a process.
var (
	spanEntropy = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.BigEndian.Uint64(b[:])
	}()
	spanSeq atomic.Uint64
)

// NewSpanID mints a process-unique 16-hex-digit span ID. IDs from
// different processes are disjoint with overwhelming probability (a
// random 48-bit process prefix plus a 16-bit sequence window).
func NewSpanID() string {
	n := spanSeq.Add(1)
	return fmt.Sprintf("%012x%04x", (spanEntropy^n>>16)&0xffffffffffff, uint16(n))
}

// Span is one completed timed interval of work within a trace. Name is
// the phase ("upload", "merge", "aggregate", ...); Actor is the
// participant or node that did the work. Bytes carries the payload size
// the span moved, when applicable. Links reference causally related spans
// in other roles that are not the span's tree parent (e.g. the trainer
// upload spans an aggregation folded in).
type Span struct {
	Name    string            `json:"name"`
	Actor   string            `json:"actor,omitempty"`
	Context SpanContext       `json:"ctx"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Bytes   int64             `json:"bytes,omitempty"`
	// CPUNanos and AllocBytes are the resource deltas metered over the
	// span (see ResourceMeter): CPU time burned and heap bytes allocated
	// while the span was open. Process-wide meters make them upper
	// bounds under concurrency; modeled costs in simulation are exact.
	CPUNanos   int64             `json:"cpu_ns,omitempty"`
	AllocBytes int64             `json:"alloc_bytes,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Links      []SpanContext     `json:"links,omitempty"`
}

// Duration is the span's elapsed time (zero if End precedes Start).
func (s Span) Duration() time.Duration {
	if s.End.Before(s.Start) {
		return 0
	}
	return s.End.Sub(s.Start)
}

// SpanSink receives completed spans. Implementations must be safe for
// concurrent use; emitting must not block protocol progress.
type SpanSink interface {
	EmitSpan(s Span)
}

// MultiSpanSink fans every span out to several sinks (e.g. a bounded
// collector for introspection plus a JSONL file writer).
type MultiSpanSink []SpanSink

var _ SpanSink = (MultiSpanSink)(nil)

// EmitSpan forwards the span to every non-nil sink.
func (m MultiSpanSink) EmitSpan(s Span) {
	for _, sink := range m {
		if sink != nil {
			sink.EmitSpan(s)
		}
	}
}

// SpanCollector is a SpanSink that accumulates completed spans in memory
// and assembles them into per-iteration trees. The zero value is
// unbounded; NewSpanCollector builds a bounded one that evicts
// oldest-first so long runs cannot accumulate millions of spans.
type SpanCollector struct {
	mu       sync.Mutex
	spans    []Span
	capacity int // <= 0: unbounded
	start    int // ring head once a bounded collector is full
	dropped  int
}

var _ SpanSink = (*SpanCollector)(nil)

// NewSpanCollector creates a collector retaining at most capacity spans
// (capacity <= 0 means unbounded). When full, the oldest span is evicted
// and counted in Dropped.
func NewSpanCollector(capacity int) *SpanCollector {
	return &SpanCollector{capacity: capacity}
}

// EmitSpan stores the span, evicting the oldest when a capacity is set.
func (c *SpanCollector) EmitSpan(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity > 0 && len(c.spans) == c.capacity {
		c.spans[c.start] = s
		c.start = (c.start + 1) % c.capacity
		c.dropped++
		return
	}
	c.spans = append(c.spans, s)
}

// Spans returns a copy of the retained spans, oldest first.
func (c *SpanCollector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, 0, len(c.spans))
	out = append(out, c.spans[c.start:]...)
	out = append(out, c.spans[:c.start]...)
	return out
}

// Dropped reports how many spans were evicted to stay within capacity.
func (c *SpanCollector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Tree assembles the retained spans of one trace into a forest.
func (c *SpanCollector) Tree(session string, iter int) *SpanTree {
	return BuildTree(c.Spans(), session, iter)
}

// SpanNode is one span with its resolved children.
type SpanNode struct {
	Span     Span        `json:"span"`
	Children []*SpanNode `json:"children,omitempty"`
}

// SpanTree is the causal forest of one trace: every retained span whose
// context matches (Session, Iter), wired up by parent span IDs. Roots are
// spans without a parent or whose parent was not retained (e.g. it lives
// in a process whose spans were not merged in); Orphans counts the latter.
type SpanTree struct {
	Session string
	Iter    int
	Roots   []*SpanNode
	// Orphans counts non-root spans promoted to roots because their
	// parent span was not present in the input.
	Orphans int
}

// BuildTree filters spans to the trace (session, iter) and assembles the
// parent/child forest. Children are ordered by start time (span ID as the
// tiebreaker), roots likewise, so the result is deterministic for a given
// span set.
func BuildTree(spans []Span, session string, iter int) *SpanTree {
	tree := &SpanTree{Session: session, Iter: iter}
	nodes := make(map[string]*SpanNode)
	var ordered []*SpanNode
	for _, s := range spans {
		if s.Context.Session != session || s.Context.Iter != iter || !s.Context.Valid() {
			continue
		}
		n := &SpanNode{Span: s}
		nodes[s.Context.SpanID] = n
		ordered = append(ordered, n)
	}
	for _, n := range ordered {
		parent := n.Span.Context.Parent
		if parent == "" {
			tree.Roots = append(tree.Roots, n)
			continue
		}
		if p, ok := nodes[parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			tree.Orphans++
			tree.Roots = append(tree.Roots, n)
		}
	}
	sortNodes := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Span.Start.Equal(ns[j].Span.Start) {
				return ns[i].Span.Start.Before(ns[j].Span.Start)
			}
			return ns[i].Span.Context.SpanID < ns[j].Span.Context.SpanID
		})
	}
	sortNodes(tree.Roots)
	for _, n := range ordered {
		sortNodes(n.Children)
	}
	return tree
}

// Find returns the first node (pre-order over the sorted forest) whose
// span has the given name, or nil.
func (t *SpanTree) Find(name string) *SpanNode {
	var walk func(ns []*SpanNode) *SpanNode
	walk = func(ns []*SpanNode) *SpanNode {
		for _, n := range ns {
			if n.Span.Name == name {
				return n
			}
			if found := walk(n.Children); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(t.Roots)
}

// Walk visits every node of the forest in pre-order.
func (t *SpanTree) Walk(fn func(n *SpanNode, depth int)) {
	var walk func(ns []*SpanNode, depth int)
	walk = func(ns []*SpanNode, depth int) {
		for _, n := range ns {
			fn(n, depth)
			walk(n.Children, depth+1)
		}
	}
	walk(t.Roots, 0)
}

// Size returns the number of spans in the forest.
func (t *SpanTree) Size() int {
	n := 0
	t.Walk(func(*SpanNode, int) { n++ })
	return n
}

// TraceKey identifies one trace (one FL iteration of one session).
type TraceKey struct {
	Session string
	Iter    int
}

// TraceKeys lists the distinct (session, iter) traces present in spans,
// sorted by session then iteration.
func TraceKeys(spans []Span) []TraceKey {
	seen := make(map[TraceKey]bool)
	var keys []TraceKey
	for _, s := range spans {
		k := TraceKey{Session: s.Context.Session, Iter: s.Context.Iter}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Session != keys[j].Session {
			return keys[i].Session < keys[j].Session
		}
		return keys[i].Iter < keys[j].Iter
	})
	return keys
}
