package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// mkSpan builds a test span in trace (session, iter) with explicit IDs and
// a start/end offset in milliseconds from a fixed base.
func mkSpan(session string, iter int, id, parent, name string, startMS, endMS int64) Span {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return Span{
		Name: name,
		Context: SpanContext{
			Session: session, Iter: iter, SpanID: id, Parent: parent,
		},
		Start: base.Add(time.Duration(startMS) * time.Millisecond),
		End:   base.Add(time.Duration(endMS) * time.Millisecond),
	}
}

func TestNewSpanIDUnique(t *testing.T) {
	const n = 10000
	seen := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := NewSpanID()
		if len(id) != 16 {
			t.Fatalf("span ID %q: want 16 hex digits", id)
		}
		if seen[id] {
			t.Fatalf("duplicate span ID %q after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestSpanContextValidAndChild(t *testing.T) {
	var zero SpanContext
	if zero.Valid() {
		t.Fatal("zero context must be invalid")
	}
	root := SpanContext{Session: "s", Iter: 3, SpanID: NewSpanID()}
	child := root.Child()
	if !child.Valid() {
		t.Fatal("child context invalid")
	}
	if child.Session != "s" || child.Iter != 3 {
		t.Fatalf("child not in parent trace: %+v", child)
	}
	if child.Parent != root.SpanID {
		t.Fatalf("child.Parent = %q, want %q", child.Parent, root.SpanID)
	}
	if child.SpanID == root.SpanID {
		t.Fatal("child reused parent span ID")
	}
}

func TestSpanDurationNegativeClamped(t *testing.T) {
	s := mkSpan("s", 0, "a", "", "x", 10, 5)
	if d := s.Duration(); d != 0 {
		t.Fatalf("inverted span duration = %v, want 0", d)
	}
}

func TestSpanCollectorBounded(t *testing.T) {
	c := NewSpanCollector(3)
	for i := 0; i < 5; i++ {
		c.EmitSpan(mkSpan("s", 0, fmt.Sprintf("id-%d", i), "", "x", int64(i), int64(i+1)))
	}
	if got := c.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	// Oldest-first eviction keeps the newest three, in emission order.
	for i, want := range []string{"id-2", "id-3", "id-4"} {
		if spans[i].Context.SpanID != want {
			t.Fatalf("spans[%d] = %q, want %q", i, spans[i].Context.SpanID, want)
		}
	}
}

func TestSpanCollectorConcurrent(t *testing.T) {
	c := NewSpanCollector(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.EmitSpan(mkSpan("s", 0, fmt.Sprintf("g%d-%d", g, i), "", "x", 0, 1))
			}
		}(g)
	}
	wg.Wait()
	if got := len(c.Spans()) + c.Dropped(); got != 800 {
		t.Fatalf("retained+dropped = %d, want 800", got)
	}
}

func TestMultiSpanSinkFanOut(t *testing.T) {
	a, b := NewSpanCollector(0), NewSpanCollector(0)
	m := MultiSpanSink{a, nil, b}
	m.EmitSpan(mkSpan("s", 0, "x", "", "x", 0, 1))
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fan-out: a=%d b=%d, want 1 each", len(a.Spans()), len(b.Spans()))
	}
}

func TestBuildTree(t *testing.T) {
	spans := []Span{
		mkSpan("s", 0, "root", "", "iteration", 0, 100),
		mkSpan("s", 0, "up", "root", "upload", 5, 30),
		mkSpan("s", 0, "agg", "root", "aggregate", 20, 90),
		mkSpan("s", 0, "md", "agg", "merge_download", 30, 50),
		// Different iteration: must be filtered out.
		mkSpan("s", 1, "other", "", "iteration", 0, 100),
		// Parent not retained: promoted to root and counted as orphan.
		mkSpan("s", 0, "lost", "gone", "merge", 40, 45),
	}
	tree := BuildTree(spans, "s", 0)
	if tree.Size() != 5 {
		t.Fatalf("tree size = %d, want 5", tree.Size())
	}
	if tree.Orphans != 1 {
		t.Fatalf("orphans = %d, want 1", tree.Orphans)
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("roots = %d, want 2 (iteration + orphan)", len(tree.Roots))
	}
	it := tree.Find("iteration")
	if it == nil || len(it.Children) != 2 {
		t.Fatalf("iteration node missing or wrong children: %+v", it)
	}
	// Children sorted by start time: upload (5) before aggregate (20).
	if it.Children[0].Span.Name != "upload" || it.Children[1].Span.Name != "aggregate" {
		t.Fatalf("child order: %q, %q", it.Children[0].Span.Name, it.Children[1].Span.Name)
	}
	md := tree.Find("merge_download")
	if md == nil {
		t.Fatal("merge_download not found under aggregate")
	}
	if tree.Find("nope") != nil {
		t.Fatal("Find on absent name must return nil")
	}
	// Walk visits every node exactly once, roots at depth 0.
	depths := map[string]int{}
	tree.Walk(func(n *SpanNode, depth int) { depths[n.Span.Context.SpanID] = depth })
	if depths["root"] != 0 || depths["up"] != 1 || depths["md"] != 2 || depths["lost"] != 0 {
		t.Fatalf("walk depths: %v", depths)
	}
}

func TestBuildTreeSelfParent(t *testing.T) {
	// A span claiming itself as parent must not recurse or vanish.
	tree := BuildTree([]Span{mkSpan("s", 0, "a", "a", "x", 0, 1)}, "s", 0)
	if tree.Size() != 1 || tree.Orphans != 1 {
		t.Fatalf("self-parent: size=%d orphans=%d", tree.Size(), tree.Orphans)
	}
}

func TestTraceKeysSorted(t *testing.T) {
	spans := []Span{
		mkSpan("b", 1, "1", "", "x", 0, 1),
		mkSpan("a", 2, "2", "", "x", 0, 1),
		mkSpan("a", 0, "3", "", "x", 0, 1),
		mkSpan("b", 1, "4", "", "x", 0, 1),
	}
	keys := TraceKeys(spans)
	want := []TraceKey{{"a", 0}, {"a", 2}, {"b", 1}}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys[%d] = %v, want %v", i, keys[i], want[i])
		}
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanJSONLWriter(&buf)
	in := []Span{
		mkSpan("s", 0, "a", "", "upload", 0, 10),
		mkSpan("s", 0, "b", "a", "store_put", 2, 4),
	}
	in[0].Actor = "trainer-00"
	in[0].Bytes = 612
	in[0].Attrs = map[string]string{"partition": "1"}
	in[1].Links = []SpanContext{{Session: "s", Iter: 0, SpanID: "a"}}
	for _, s := range in {
		w.EmitSpan(s)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Emitted() != 2 || w.Dropped() != 0 || w.Err() != nil {
		t.Fatalf("emitted=%d dropped=%d err=%v", w.Emitted(), w.Dropped(), w.Err())
	}

	out, err := ReadSpanJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d spans, want 2", len(out))
	}
	if out[0].Actor != "trainer-00" || out[0].Bytes != 612 || out[0].Attrs["partition"] != "1" {
		t.Fatalf("span 0 did not round-trip: %+v", out[0])
	}
	if !out[0].Start.Equal(in[0].Start) || !out[0].End.Equal(in[0].End) {
		t.Fatalf("timestamps did not round-trip: %v..%v", out[0].Start, out[0].End)
	}
	if len(out[1].Links) != 1 || out[1].Links[0].SpanID != "a" {
		t.Fatalf("links did not round-trip: %+v", out[1].Links)
	}
	if out[1].Context.Parent != "a" {
		t.Fatalf("parent did not round-trip: %+v", out[1].Context)
	}
}

func TestReadSpanJSONLSkipsBlankAndRejectsMalformed(t *testing.T) {
	good := `{"name":"x","ctx":{"session":"s","iter":0,"span_id":"a"},"start":"2026-01-01T00:00:00Z","end":"2026-01-01T00:00:01Z"}`
	spans, err := ReadSpanJSONL(strings.NewReader(good + "\n\n" + good + "\n"))
	if err != nil || len(spans) != 2 {
		t.Fatalf("blank-line stream: spans=%d err=%v", len(spans), err)
	}
	_, err = ReadSpanJSONL(strings.NewReader(good + "\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("malformed line error = %v, want mention of line 2", err)
	}
}

func TestSpanJSONLWriterErrLatches(t *testing.T) {
	w := NewSpanJSONLWriter(failWriter{})
	// The bufio buffer absorbs writes until it fills; force a flush error.
	w.EmitSpan(mkSpan("s", 0, "a", "", "x", 0, 1))
	if err := w.Flush(); err == nil {
		t.Fatal("flush to failing writer must error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }
