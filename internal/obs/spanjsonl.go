package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SpanJSONLWriter streams completed spans to a writer as JSON Lines, one
// span per line, in bounded memory. It mirrors the event JSONL sink in
// internal/core: write errors are retained and subsequent spans dropped
// rather than blocking the protocol. Safe for concurrent emitters.
type SpanJSONLWriter struct {
	mu      sync.Mutex
	buf     *bufio.Writer
	emitted int
	failed  int
	err     error
}

var _ SpanSink = (*SpanJSONLWriter)(nil)

// NewSpanJSONLWriter wraps w in a buffered span JSONL sink. Call Flush
// (or Close) before reading what was written.
func NewSpanJSONLWriter(w io.Writer) *SpanJSONLWriter {
	return &SpanJSONLWriter{buf: bufio.NewWriter(w)}
}

// EmitSpan writes the span as one JSON line.
func (w *SpanJSONLWriter) EmitSpan(s Span) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.failed++
		return
	}
	line, err := json.Marshal(s)
	if err == nil {
		_, err = w.buf.Write(append(line, '\n'))
	}
	if err != nil {
		w.err = err
		w.failed++
		return
	}
	w.emitted++
}

// Flush forces buffered lines to the underlying writer.
func (w *SpanJSONLWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.buf.Flush()
}

// Close flushes the sink. It does not close the underlying writer (the
// caller owns it).
func (w *SpanJSONLWriter) Close() error { return w.Flush() }

// Emitted returns how many spans were successfully encoded.
func (w *SpanJSONLWriter) Emitted() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.emitted
}

// Dropped returns how many spans were lost to write errors.
func (w *SpanJSONLWriter) Dropped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Err returns the first write error, if any.
func (w *SpanJSONLWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// ReadSpanJSONL parses a span JSONL stream produced by SpanJSONLWriter.
// Blank lines are skipped; a malformed line aborts with an error naming
// it. Streams concatenated from several nodes parse fine — spans need no
// global order.
func ReadSpanJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var spans []Span
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var s Span
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", lineNo, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: read spans: %w", err)
	}
	return spans, nil
}
