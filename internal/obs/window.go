package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Sliding-time-window aggregation. The cumulative registry answers "how
// many since start"; a Window answers "what happened in the last N
// seconds" — the shape live alerting needs. Observations land in a ring
// of time slices (each a fixed-bucket histogram delta plus an exact
// max); a snapshot merges the slices still inside the window into one
// HistogramSnapshot and interpolates p50/p90 from it.
//
// Windows take the clock as an argument instead of reading time.Now, so
// the same code runs against wall time in daemons and against the
// netsim virtual clock in deterministic simulations.

// windowSlice is one time slice of a Window: a histogram delta covering
// [epoch*sliceDur, (epoch+1)*sliceDur).
type windowSlice struct {
	epoch  int64 // slice index since the zero time; -1 means unused
	counts []uint64
	sum    float64
	count  uint64
	max    float64
}

// Window aggregates observations over a sliding time window. Safe for
// concurrent use. The zero Window is not usable; use NewWindow.
type Window struct {
	mu       sync.Mutex
	bounds   []float64 // ascending finite bucket bounds; +Inf implicit
	slices   []windowSlice
	sliceDur time.Duration
}

// NewWindow creates a sliding window of the given total width split into
// n slices (the granularity at which old observations expire). width <= 0
// defaults to 30s, n <= 0 to 6 slices, nil buckets to DefBuckets.
func NewWindow(width time.Duration, n int, buckets []float64) *Window {
	if width <= 0 {
		width = 30 * time.Second
	}
	if n <= 0 {
		n = 6
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: window buckets must be ascending")
	}
	w := &Window{
		bounds:   bounds,
		slices:   make([]windowSlice, n),
		sliceDur: width / time.Duration(n),
	}
	for i := range w.slices {
		w.slices[i] = windowSlice{epoch: -1, counts: make([]uint64, len(bounds)+1)}
	}
	return w
}

// Width reports the total window span.
func (w *Window) Width() time.Duration {
	return w.sliceDur * time.Duration(len(w.slices))
}

// slice returns the windowSlice for the given epoch, recycling a stale
// ring position if needed. Caller holds w.mu.
func (w *Window) slice(epoch int64) *windowSlice {
	s := &w.slices[int(epoch%int64(len(w.slices)))]
	if s.epoch != epoch {
		s.epoch = epoch
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.sum, s.count, s.max = 0, 0, 0
	}
	return s
}

// Observe records one value at the given instant. Observations older
// than the slice the ring has already recycled for a newer epoch are
// dropped (the window has slid past them).
func (w *Window) Observe(now time.Time, v float64) {
	epoch := now.UnixNano() / int64(w.sliceDur)
	if epoch < 0 {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.slices[int(epoch%int64(len(w.slices)))].epoch > epoch {
		return
	}
	s := w.slice(epoch)
	i := sort.SearchFloat64s(w.bounds, v)
	s.counts[i]++
	s.sum += v
	s.count++
	if v > s.max {
		s.max = v
	}
}

// WindowSnapshot summarises the observations inside one sliding window.
type WindowSnapshot struct {
	Width time.Duration `json:"width_ns"`
	Count uint64        `json:"count"`
	Sum   float64       `json:"sum"`
	// Rate is observations per second over the window width.
	Rate float64 `json:"rate"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	// Max is exact (tracked per slice), unlike the interpolated quantiles.
	Max float64 `json:"max"`
}

// Stat selects one summary statistic by name: p50, p90, max, rate,
// count or sum.
func (s WindowSnapshot) Stat(name string) (float64, error) {
	switch name {
	case "p50":
		return s.P50, nil
	case "p90":
		return s.P90, nil
	case "", "max":
		return s.Max, nil
	case "rate":
		return s.Rate, nil
	case "count":
		return float64(s.Count), nil
	case "sum":
		return s.Sum, nil
	}
	return 0, fmt.Errorf("obs: unknown window stat %q", name)
}

// Snapshot merges the slices still inside the window ending at now into
// one summary.
func (w *Window) Snapshot(now time.Time) WindowSnapshot {
	epoch := now.UnixNano() / int64(w.sliceDur)
	oldest := epoch - int64(len(w.slices)) + 1
	merged := HistogramSnapshot{
		Bounds: w.bounds,
		Counts: make([]uint64, len(w.bounds)+1),
	}
	snap := WindowSnapshot{Width: w.Width()}
	w.mu.Lock()
	for i := range w.slices {
		s := &w.slices[i]
		if s.epoch < oldest || s.epoch > epoch || s.count == 0 {
			continue
		}
		for j, c := range s.counts {
			merged.Counts[j] += c
		}
		merged.Sum += s.sum
		merged.Count += s.count
		if s.max > snap.Max {
			snap.Max = s.max
		}
	}
	w.mu.Unlock()
	snap.Count = merged.Count
	snap.Sum = merged.Sum
	if sec := w.Width().Seconds(); sec > 0 {
		snap.Rate = float64(merged.Count) / sec
	}
	snap.P50 = merged.Quantile(0.50)
	snap.P90 = merged.Quantile(0.90)
	// The interpolated quantile can't exceed the exact max; clamp so
	// coarse buckets never report p90 > max.
	if snap.P50 > snap.Max {
		snap.P50 = snap.Max
	}
	if snap.P90 > snap.Max {
		snap.P90 = snap.Max
	}
	return snap
}
