package obs

import (
	"testing"
	"time"
)

var windowBase = time.Unix(0, 0).UTC()

func TestWindowSnapshotBasics(t *testing.T) {
	w := NewWindow(30*time.Second, 6, nil)
	now := windowBase.Add(10 * time.Second)
	for _, v := range []float64{0.1, 0.2, 0.3, 0.4, 5.0} {
		w.Observe(now, v)
	}
	snap := w.Snapshot(now)
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if snap.Max != 5.0 {
		t.Fatalf("max = %v, want exact 5.0", snap.Max)
	}
	if snap.P50 <= 0 || snap.P50 > 1 {
		t.Fatalf("p50 = %v, want in (0, 1]", snap.P50)
	}
	if snap.P90 < snap.P50 {
		t.Fatalf("p90 %v < p50 %v", snap.P90, snap.P50)
	}
	wantRate := 5.0 / 30.0
	if snap.Rate != wantRate {
		t.Fatalf("rate = %v, want %v", snap.Rate, wantRate)
	}
	if snap.Width != 30*time.Second {
		t.Fatalf("width = %v", snap.Width)
	}
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(10*time.Second, 5, nil)
	w.Observe(windowBase.Add(time.Second), 9.0)
	if got := w.Snapshot(windowBase.Add(2 * time.Second)); got.Count != 1 || got.Max != 9.0 {
		t.Fatalf("fresh observation missing: %+v", got)
	}
	// After the window slides past, the observation expires.
	if got := w.Snapshot(windowBase.Add(15 * time.Second)); got.Count != 0 || got.Max != 0 {
		t.Fatalf("stale observation survived the slide: %+v", got)
	}
	// New observations in recycled slices do not resurrect old counts.
	w.Observe(windowBase.Add(16*time.Second), 1.0)
	if got := w.Snapshot(windowBase.Add(16 * time.Second)); got.Count != 1 || got.Max != 1.0 {
		t.Fatalf("recycled slice polluted: %+v", got)
	}
	// Observations older than the ring are dropped, not misfiled.
	w.Observe(windowBase.Add(time.Second), 99.0)
	if got := w.Snapshot(windowBase.Add(16 * time.Second)); got.Count != 1 || got.Max != 1.0 {
		t.Fatalf("ancient observation resurrected: %+v", got)
	}
}

func TestWindowQuantileClampedToMax(t *testing.T) {
	// All mass in one coarse bucket: interpolation would report the
	// bucket bound (2.5), above the true max.
	w := NewWindow(30*time.Second, 3, []float64{1, 2.5})
	now := windowBase.Add(time.Second)
	for i := 0; i < 10; i++ {
		w.Observe(now, 1.2)
	}
	snap := w.Snapshot(now)
	if snap.Max != 1.2 {
		t.Fatalf("max = %v", snap.Max)
	}
	if snap.P90 > snap.Max {
		t.Fatalf("p90 %v exceeds exact max %v", snap.P90, snap.Max)
	}
}

func TestWindowStatSelector(t *testing.T) {
	s := WindowSnapshot{Count: 4, Sum: 8, Rate: 2, P50: 1, P90: 3, Max: 5}
	for name, want := range map[string]float64{
		"p50": 1, "p90": 3, "max": 5, "": 5, "rate": 2, "count": 4, "sum": 8,
	} {
		got, err := s.Stat(name)
		if err != nil || got != want {
			t.Fatalf("Stat(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := s.Stat("p99999"); err == nil {
		t.Fatal("unknown stat accepted")
	}
}
