package pedersen

import "sync/atomic"

// Accounting and fault hooks for the commit path, mirroring
// group.SetAccount (see that package for the inversion rationale:
// pedersen must not import obs, so interested callers install hooks).

// AccountFunc is called at the start of a commit with the operation
// name ("pedersen_commit") and the vector length; the returned func is
// called when the commit completes. Either may be nil.
type AccountFunc func(op string, n int) func()

var account atomic.Pointer[AccountFunc]

// SetAccount installs the hook bracketing every commitment computation
// (nil removes it). Safe to call with commits in flight.
func SetAccount(fn AccountFunc) {
	if fn == nil {
		account.Store(nil)
		return
	}
	account.Store(&fn)
}

func accountOp(op string, n int) func() {
	fn := account.Load()
	if fn == nil {
		return func() {}
	}
	done := (*fn)(op, n)
	if done == nil {
		return func() {}
	}
	return done
}

// commitPad is the injected per-commit allocation in bytes — a fault
// knob in the repo's fault-injection tradition (storage.FaultPlan): the
// bench gate's alloc dimension is only trustworthy if a deliberately
// introduced allocation regression in this hot path actually trips it.
var commitPad atomic.Int64

// padSink keeps injected allocations reachable so the compiler cannot
// elide them; each injection replaces the last.
var padSink atomic.Pointer[[]byte]

// InjectCommitAlloc makes every subsequent commit allocate an extra n
// bytes (n <= 0 disables, the default). Test-only: it simulates an
// allocation regression in the commitment hot path so gate coverage of
// the alloc_bytes dimension can be verified end to end.
func InjectCommitAlloc(n int64) {
	commitPad.Store(n)
}

// injectAlloc performs the configured extra allocation.
func injectAlloc() {
	if n := commitPad.Load(); n > 0 {
		b := make([]byte, n)
		padSink.Store(&b)
	}
}
