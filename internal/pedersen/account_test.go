package pedersen

import (
	"math/big"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"

	"ipls/internal/group"
)

func testParams(t *testing.T, n int) *Params {
	t.Helper()
	p, err := Setup(group.Secp256k1(), n, "account-test")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func vec(n int) []*big.Int {
	v := make([]*big.Int, n)
	for i := range v {
		v[i] = big.NewInt(int64(i + 1))
	}
	return v
}

func TestCommitAccountHook(t *testing.T) {
	var starts, dones atomic.Int64
	var gotOp string
	var gotN int
	SetAccount(func(op string, n int) func() {
		starts.Add(1)
		gotOp, gotN = op, n
		return func() { dones.Add(1) }
	})
	defer SetAccount(nil)

	p := testParams(t, 8)
	if _, err := p.Commit(vec(8)); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 1 || dones.Load() != 1 {
		t.Fatalf("hook fired start=%d done=%d, want 1/1", starts.Load(), dones.Load())
	}
	if gotOp != "pedersen_commit" || gotN != 8 {
		t.Fatalf("hook saw (%q, %d), want (pedersen_commit, 8)", gotOp, gotN)
	}

	SetAccount(nil)
	if _, err := p.Commit(vec(8)); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 1 {
		t.Fatal("removed hook must not fire")
	}
}

func TestGroupAccountHook(t *testing.T) {
	var ops []string
	group.SetAccount(func(op string, n int) func() {
		ops = append(ops, op)
		return nil // nil done funcs are tolerated
	})
	defer group.SetAccount(nil)

	p := testParams(t, 4)
	if _, err := p.CommitWith(vec(4), group.StrategyPippenger); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0] != "multiexp_pippenger" {
		t.Fatalf("group hook saw %v, want [multiexp_pippenger]", ops)
	}
}

// commitAllocBytes measures the median heap bytes allocated by runs
// commits. Medians over byte totals are robust where AllocsPerRun's
// single-sample allocation counts are not: the race runtime, GC
// assists, and map growth all add sporadic allocations, but the 1 MiB
// injection below dwarfs them in every non-outlier sample.
func commitAllocBytes(t *testing.T, p *Params, v []*big.Int, samples, runs int) uint64 {
	t.Helper()
	measured := make([]uint64, samples)
	var ms runtime.MemStats
	for i := range measured {
		runtime.GC()
		runtime.ReadMemStats(&ms)
		before := ms.TotalAlloc
		for r := 0; r < runs; r++ {
			if _, err := p.Commit(v); err != nil {
				t.Fatal(err)
			}
		}
		runtime.ReadMemStats(&ms)
		measured[i] = (ms.TotalAlloc - before) / uint64(runs)
	}
	sort.Slice(measured, func(i, j int) bool { return measured[i] < measured[j] })
	return measured[len(measured)/2]
}

// TestInjectCommitAlloc verifies the fault knob actually allocates: the
// gate acceptance test in cmd/iplsbench relies on this moving the
// alloc_bytes needle. Allocation volume is measured as the median of
// several multi-commit byte samples, so the test holds under the race
// detector's noisy shadow-state allocations too.
func TestInjectCommitAlloc(t *testing.T) {
	p := testParams(t, 4)
	v := vec(4)
	const pad = 1 << 20 // 1 MiB per commit — far above any runtime noise
	base := commitAllocBytes(t, p, v, 5, 4)
	InjectCommitAlloc(pad)
	defer InjectCommitAlloc(0)
	injected := commitAllocBytes(t, p, v, 5, 4)
	if injected < base+pad/2 {
		t.Fatalf("injection did not add allocations: base=%dB injected=%dB, want ≥ base+%dB",
			base, injected, pad/2)
	}
	// Commitments stay correct under injection.
	c, err := p.Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Verify(v, c)
	if err != nil || !ok {
		t.Fatalf("Verify under injection = %v, %v", ok, err)
	}
}
