package pedersen

import (
	"math/big"
	"sync/atomic"
	"testing"

	"ipls/internal/group"
)

func testParams(t *testing.T, n int) *Params {
	t.Helper()
	p, err := Setup(group.Secp256k1(), n, "account-test")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func vec(n int) []*big.Int {
	v := make([]*big.Int, n)
	for i := range v {
		v[i] = big.NewInt(int64(i + 1))
	}
	return v
}

func TestCommitAccountHook(t *testing.T) {
	var starts, dones atomic.Int64
	var gotOp string
	var gotN int
	SetAccount(func(op string, n int) func() {
		starts.Add(1)
		gotOp, gotN = op, n
		return func() { dones.Add(1) }
	})
	defer SetAccount(nil)

	p := testParams(t, 8)
	if _, err := p.Commit(vec(8)); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 1 || dones.Load() != 1 {
		t.Fatalf("hook fired start=%d done=%d, want 1/1", starts.Load(), dones.Load())
	}
	if gotOp != "pedersen_commit" || gotN != 8 {
		t.Fatalf("hook saw (%q, %d), want (pedersen_commit, 8)", gotOp, gotN)
	}

	SetAccount(nil)
	if _, err := p.Commit(vec(8)); err != nil {
		t.Fatal(err)
	}
	if starts.Load() != 1 {
		t.Fatal("removed hook must not fire")
	}
}

func TestGroupAccountHook(t *testing.T) {
	var ops []string
	group.SetAccount(func(op string, n int) func() {
		ops = append(ops, op)
		return nil // nil done funcs are tolerated
	})
	defer group.SetAccount(nil)

	p := testParams(t, 4)
	if _, err := p.CommitWith(vec(4), group.StrategyPippenger); err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0] != "multiexp_pippenger" {
		t.Fatalf("group hook saw %v, want [multiexp_pippenger]", ops)
	}
}

// TestInjectCommitAlloc verifies the fault knob actually allocates: the
// gate acceptance test in cmd/iplsbench relies on this moving the
// alloc_bytes needle.
func TestInjectCommitAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is too noisy under the race detector")
	}
	p := testParams(t, 4)
	v := vec(4)
	base := testing.AllocsPerRun(10, func() {
		if _, err := p.Commit(v); err != nil {
			t.Fatal(err)
		}
	})
	InjectCommitAlloc(1 << 20)
	defer InjectCommitAlloc(0)
	injected := testing.AllocsPerRun(10, func() {
		if _, err := p.Commit(v); err != nil {
			t.Fatal(err)
		}
	})
	if injected <= base {
		t.Fatalf("injection did not add allocations: base=%v injected=%v", base, injected)
	}
	// Commitments stay correct under injection.
	c, err := p.Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Verify(v, c)
	if err != nil || !ok {
		t.Fatalf("Verify under injection = %v, %v", ok, err)
	}
}
