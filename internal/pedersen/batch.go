package pedersen

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"runtime/pprof"

	"ipls/internal/group"
)

// batchChallengeBits sizes the random coefficients of the linear
// combination. 128 bits keeps the soundness error at 2⁻¹²⁸ while halving
// the scalar width of the commitment-side multiexp relative to full-order
// coefficients.
const batchChallengeBits = 128

// BatchVerify checks that every commitment cs[j] commits to vecs[j], all
// at once: it samples random coefficients rⱼ and verifies the single
// equation
//
//	Commit(∑ⱼ rⱼ·vecs[j]) == ∑ⱼ rⱼ·cs[j]
//
// The left side is one n-element multiexp over the generators (n = longest
// vector) and the right one m-element multiexp over the commitment points,
// replacing m full recommitments — the per-upload Verify loop the
// aggregator would otherwise run for a partition (§IV-A).
//
// Soundness: if cs[k] does not commit to vecs[k] for some k, the
// difference point Dₖ = cs[k] − Commit(vecs[k]) is not the identity, and
// the check passes only if ∑ⱼ rⱼ·Dⱼ happens to be the identity. With rₖ
// uniform over 2¹²⁸ values that holds with probability at most 2⁻¹²⁸
// (condition on the other coefficients: at most one choice of rₖ can
// cancel a fixed non-identity Dₖ). A true batch therefore always passes,
// and a batch with any tampered upload fails except with negligible
// probability. BatchVerify reports only whether the whole batch is
// consistent; callers that need the offending index fall back to
// per-upload Verify.
func (p *Params) BatchVerify(vecs [][]*big.Int, cs []Commitment) (bool, error) {
	if len(vecs) != len(cs) {
		return false, fmt.Errorf("pedersen: %d vectors but %d commitments", len(vecs), len(cs))
	}
	if len(vecs) == 0 {
		return false, errors.New("pedersen: nothing to batch-verify")
	}
	maxLen := 0
	for j, v := range vecs {
		if len(v) == 0 {
			return false, fmt.Errorf("pedersen: vector %d is empty", j)
		}
		if len(v) > maxLen {
			maxLen = len(v)
		}
	}
	points := make([]group.Point, len(cs))
	for j, c := range cs {
		pt, err := p.curve.Decode(c)
		if err != nil {
			return false, fmt.Errorf("pedersen: commitment %d: %w", j, err)
		}
		points[j] = pt
	}
	if len(vecs) == 1 {
		return p.Verify(vecs[0], cs[0])
	}

	defer accountOp("pedersen_batch_verify", len(vecs))()
	bound := new(big.Int).Lsh(big.NewInt(1), batchChallengeBits)
	coeffs := make([]*big.Int, len(vecs))
	for j := range coeffs {
		r, err := rand.Int(rand.Reader, bound)
		if err != nil {
			return false, fmt.Errorf("pedersen: sample batch challenge: %w", err)
		}
		// A zero coefficient would drop upload j from the check entirely.
		coeffs[j] = r.Add(r, big.NewInt(1))
	}

	var ok bool
	var err error
	pprof.Do(context.Background(), pprof.Labels("phase", "pedersen_batch_verify"), func(context.Context) {
		// Combined vector: ∑ⱼ rⱼ·vecs[j], element-wise in the scalar field.
		combined := make([]*big.Int, maxLen)
		for i := range combined {
			combined[i] = new(big.Int)
		}
		for j, v := range vecs {
			r := coeffs[j]
			for i, x := range v {
				combined[i] = p.field.Add(combined[i], p.field.Mul(r, p.field.Reduce(x)))
			}
		}
		var want Commitment
		want, err = p.Commit(combined)
		if err != nil {
			return
		}
		var rhs group.Point
		rhs, err = p.curve.MultiScalarMult(points, coeffs, group.StrategyAuto)
		if err != nil {
			return
		}
		ok = want.Equal(Commitment(p.curve.Encode(rhs)))
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}
