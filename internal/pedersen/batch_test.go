package pedersen

import (
	"errors"
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

func batchFixtures(t *testing.T, curve *group.Curve, m, n int, seed int64) (*Params, [][]*big.Int, []Commitment) {
	t.Helper()
	p, err := Setup(curve, n, "batch")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]*big.Int, m)
	cs := make([]Commitment, m)
	for j := 0; j < m; j++ {
		vecs[j] = randomVector(rng, q, n)
		c, err := p.Commit(vecs[j])
		if err != nil {
			t.Fatal(err)
		}
		cs[j] = c
	}
	return p, vecs, cs
}

func TestBatchVerifyAccepts(t *testing.T) {
	for _, curve := range []*group.Curve{group.Secp256k1(), group.Secp256r1Fast()} {
		p, vecs, cs := batchFixtures(t, curve, 5, 12, 31)
		ok, err := p.BatchVerify(vecs, cs)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%s: honest batch rejected", curve.Name)
		}
	}
}

// TestBatchVerifySoundness is the ISSUE's soundness criterion: a batch
// with any single corrupted upload must be rejected, whichever position
// the corruption lands in and whether the vector or the commitment is the
// side that lies.
func TestBatchVerifySoundness(t *testing.T) {
	p, vecs, cs := batchFixtures(t, group.Secp256k1(), 5, 12, 32)
	for j := range vecs {
		// Tamper the vector for upload j (commitment no longer matches).
		tampered := make([][]*big.Int, len(vecs))
		for k := range vecs {
			tampered[k] = vecs[k]
		}
		vj := make([]*big.Int, len(vecs[j]))
		copy(vj, vecs[j])
		vj[j%len(vj)] = p.Field().Add(vj[j%len(vj)], big.NewInt(1))
		tampered[j] = vj
		ok, err := p.BatchVerify(tampered, cs)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("batch accepted with tampered vector at %d", j)
		}

		// Swap in a valid-but-wrong commitment at position j.
		wrongC := make([]Commitment, len(cs))
		copy(wrongC, cs)
		other, err := p.Commit(vj)
		if err != nil {
			t.Fatal(err)
		}
		wrongC[j] = other
		ok, err = p.BatchVerify(vecs, wrongC)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("batch accepted with substituted commitment at %d", j)
		}
	}
}

func TestBatchVerifyMixedLengths(t *testing.T) {
	// Partitions can carry uploads of different widths; shorter vectors are
	// implicitly zero-extended by the linear combination and must verify.
	p, err := Setup(group.Secp256k1(), 8, "batch-mixed")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(33))
	lens := []int{3, 8, 5}
	vecs := make([][]*big.Int, len(lens))
	cs := make([]Commitment, len(lens))
	for j, n := range lens {
		vecs[j] = randomVector(rng, q, n)
		cs[j], err = p.Commit(vecs[j])
		if err != nil {
			t.Fatal(err)
		}
	}
	ok, err := p.BatchVerify(vecs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("mixed-length batch rejected")
	}
}

func TestBatchVerifySingleUpload(t *testing.T) {
	p, vecs, cs := batchFixtures(t, group.Secp256k1(), 1, 6, 34)
	ok, err := p.BatchVerify(vecs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("single-upload batch rejected")
	}
	bad := make([]*big.Int, len(vecs[0]))
	copy(bad, vecs[0])
	bad[0] = p.Field().Add(bad[0], big.NewInt(1))
	ok, err = p.BatchVerify([][]*big.Int{bad}, cs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("single tampered upload accepted")
	}
}

func TestBatchVerifyErrors(t *testing.T) {
	p, vecs, cs := batchFixtures(t, group.Secp256k1(), 2, 4, 35)
	if _, err := p.BatchVerify(nil, nil); err == nil {
		t.Fatal("expected error on empty batch")
	}
	if _, err := p.BatchVerify(vecs, cs[:1]); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := p.BatchVerify([][]*big.Int{vecs[0], nil}, cs); err == nil {
		t.Fatal("expected error on empty vector")
	}
	if _, err := p.BatchVerify(vecs, []Commitment{cs[0], Commitment([]byte{1})}); err == nil {
		t.Fatal("expected error on malformed commitment")
	}
}

// TestBatchVerifyConcurrent runs batch verifications from many goroutines
// sharing one Params, under the race detector in CI.
func TestBatchVerifyConcurrent(t *testing.T) {
	p, vecs, cs := batchFixtures(t, group.Secp256k1(), 4, 10, 36)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := p.BatchVerify(vecs, cs)
			if err != nil {
				errs <- err
				return
			}
			if !ok {
				errs <- errBatchRejected
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errBatchRejected = errors.New("honest batch rejected concurrently")
