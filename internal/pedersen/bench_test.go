package pedersen

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

func benchParams(b *testing.B, n int) (*Params, []*big.Int) {
	b.Helper()
	p, err := Setup(group.Secp256k1(), n, "bench")
	if err != nil {
		b.Fatal(err)
	}
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(7))
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = (rng.Float64() - 0.5) * 10
	}
	v, err := q.EncodeVec(vec)
	if err != nil {
		b.Fatal(err)
	}
	return p, v
}

// BenchmarkCommit compares the sequential baseline (Pippenger), the
// precomputed fixed-base tables, and auto routing at the widths a
// partition commit actually sees.
func BenchmarkCommit(b *testing.B) {
	for _, n := range []int{64, 512} {
		p, v := benchParams(b, n)
		for _, s := range []group.MultiExpStrategy{group.StrategyPippenger, group.StrategyPrecomputed, group.StrategyAuto} {
			b.Run(fmt.Sprintf("%s/n=%d", s, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := p.CommitWith(v, s); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCommitParallel measures the parallel Pippenger commit path at a
// width past every auto crossover; compare against the pippenger rows of
// BenchmarkCommit for the per-core scaling.
func BenchmarkCommitParallel(b *testing.B) {
	for _, n := range []int{512, 4096} {
		p, v := benchParams(b, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.CommitWith(v, group.StrategyParallel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchVerify pits one random-linear-combination batch check
// against the per-upload Verify loop it replaces.
func BenchmarkBatchVerify(b *testing.B) {
	for _, m := range []int{4, 16} {
		const n = 64
		p, _ := benchParams(b, n)
		q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
		rng := rand.New(rand.NewSource(8))
		vecs := make([][]*big.Int, m)
		cs := make([]Commitment, m)
		for j := 0; j < m; j++ {
			vec := make([]float64, n)
			for i := range vec {
				vec[i] = (rng.Float64() - 0.5) * 10
			}
			v, err := q.EncodeVec(vec)
			if err != nil {
				b.Fatal(err)
			}
			vecs[j] = v
			if cs[j], err = p.Commit(v); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("batch/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ok, err := p.BatchVerify(vecs, cs)
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("honest batch rejected")
				}
			}
		})
		b.Run(fmt.Sprintf("loop/m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range vecs {
					ok, err := p.Verify(vecs[j], cs[j])
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						b.Fatal("honest upload rejected")
					}
				}
			}
		})
	}
}
