package pedersen

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"ipls/internal/group"
)

// The protocol's commitments are deliberately deterministic (binding-only):
// the directory must be able to accumulate them publicly and verify the
// aggregate, and gradients travel in the clear anyway. This file adds the
// classic *hiding* Pedersen variant — C = h^r · ∏ hᵢ^{vᵢ} with a random
// blinding factor r — the building block used by VeriFL-style private
// verifiable aggregation (the paper's [3]), where gradients are masked and
// only commitments are public. The homomorphism extends to openings:
// Combine(C₁, C₂) opens to (v₁+v₂, r₁+r₂ mod N).

// Opening is the secret pre-image of a hiding commitment.
type Opening struct {
	Values   []*big.Int
	Blinding *big.Int
}

// blindingLabel domain-separates the blinding generator from the vector
// generators, so its discrete log relative to them is unknown.
const blindingLabel = "/blinding"

// BlindingGenerator returns the generator the blinding factor multiplies.
func (p *Params) BlindingGenerator() group.Point {
	p.mu.Lock()
	if p.blinding.IsInfinity() {
		p.blinding = p.curve.HashToPoint(p.label+blindingLabel, 0)
	}
	h := p.blinding.Clone()
	p.mu.Unlock()
	return h
}

// NewBlinding samples a uniformly random blinding factor.
func (p *Params) NewBlinding() (*big.Int, error) {
	r, err := rand.Int(rand.Reader, p.curve.N)
	if err != nil {
		return nil, fmt.Errorf("pedersen: sample blinding: %w", err)
	}
	return r, nil
}

// CommitHiding commits to v under blinding factor r.
func (p *Params) CommitHiding(v []*big.Int, r *big.Int) (Commitment, error) {
	if len(v) == 0 {
		return nil, errors.New("pedersen: cannot commit to an empty vector")
	}
	if r == nil {
		return nil, errors.New("pedersen: nil blinding factor")
	}
	gens := p.generators(len(v))
	points := make([]group.Point, 0, len(v)+1)
	scalars := make([]*big.Int, 0, len(v)+1)
	points = append(points, p.BlindingGenerator())
	scalars = append(scalars, r)
	points = append(points, gens...)
	scalars = append(scalars, v...)
	point, err := p.curve.MultiScalarMult(points, scalars, group.StrategyAuto)
	if err != nil {
		return nil, fmt.Errorf("pedersen: %w", err)
	}
	return Commitment(p.curve.Encode(point)), nil
}

// VerifyOpening reports whether (o.Values, o.Blinding) opens c.
func (p *Params) VerifyOpening(c Commitment, o Opening) (bool, error) {
	want, err := p.CommitHiding(o.Values, o.Blinding)
	if err != nil {
		return false, err
	}
	return want.Equal(c), nil
}

// CombineOpenings adds openings element-wise (values in the field, the
// blinding factors mod the group order), matching Combine on the
// commitments.
func (p *Params) CombineOpenings(os ...Opening) (Opening, error) {
	if len(os) == 0 {
		return Opening{}, errors.New("pedersen: nothing to combine")
	}
	vecs := make([][]*big.Int, len(os))
	blind := new(big.Int)
	for i, o := range os {
		vecs[i] = o.Values
		if o.Blinding == nil {
			return Opening{}, fmt.Errorf("pedersen: opening %d has no blinding", i)
		}
		blind = p.field.Add(blind, p.field.Reduce(o.Blinding))
	}
	sum, err := p.field.SumVecs(vecs...)
	if err != nil {
		return Opening{}, fmt.Errorf("pedersen: %w", err)
	}
	return Opening{Values: sum, Blinding: blind}, nil
}
