package pedersen

import (
	"math/big"
	"math/rand"
	"testing"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

func TestHidingCommitOpenRoundTrip(t *testing.T) {
	p := setup(t, 8)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(1))
	v := randomVector(rng, q, 8)
	r, err := p.NewBlinding()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.CommitHiding(v, r)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.VerifyOpening(c, Opening{Values: v, Blinding: r})
	if err != nil || !ok {
		t.Fatalf("honest opening rejected: ok=%v err=%v", ok, err)
	}
	// Wrong blinding or wrong values fail.
	bad := new(big.Int).Add(r, big.NewInt(1))
	if ok, _ := p.VerifyOpening(c, Opening{Values: v, Blinding: bad}); ok {
		t.Fatal("wrong blinding accepted")
	}
	altered := append([]*big.Int(nil), v...)
	altered[0] = p.Field().Add(altered[0], big.NewInt(1))
	if ok, _ := p.VerifyOpening(c, Opening{Values: altered, Blinding: r}); ok {
		t.Fatal("altered vector accepted")
	}
}

func TestHidingPropertySameVectorDifferentCommitments(t *testing.T) {
	// The whole point of the blinding: commitments to identical vectors
	// are unlinkable.
	p := setup(t, 4)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(2))
	v := randomVector(rng, q, 4)
	r1, err := p.NewBlinding()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.NewBlinding()
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := p.CommitHiding(v, r1)
	c2, _ := p.CommitHiding(v, r2)
	if c1.Equal(c2) {
		t.Fatal("identical vectors produced identical hiding commitments")
	}
	// The deterministic commitment is the r=0 special case plus the
	// blinding term; hiding and binding-only commitments never collide
	// for non-zero r.
	plain, _ := p.Commit(v)
	if c1.Equal(plain) {
		t.Fatal("hiding commitment collided with the deterministic one")
	}
}

func TestHidingHomomorphism(t *testing.T) {
	// Combine(C1, C2) must open to the combined opening.
	p := setup(t, 6)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(3))
	var coms []Commitment
	var opens []Opening
	for i := 0; i < 3; i++ {
		v := randomVector(rng, q, 6)
		r, err := p.NewBlinding()
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.CommitHiding(v, r)
		if err != nil {
			t.Fatal(err)
		}
		coms = append(coms, c)
		opens = append(opens, Opening{Values: v, Blinding: r})
	}
	combined, err := p.Combine(coms...)
	if err != nil {
		t.Fatal(err)
	}
	opening, err := p.CombineOpenings(opens...)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.VerifyOpening(combined, opening)
	if err != nil || !ok {
		t.Fatalf("combined opening rejected: ok=%v err=%v", ok, err)
	}
}

func TestHidingErrors(t *testing.T) {
	p := setup(t, 2)
	if _, err := p.CommitHiding(nil, big.NewInt(1)); err == nil {
		t.Fatal("empty vector accepted")
	}
	if _, err := p.CommitHiding([]*big.Int{big.NewInt(1)}, nil); err == nil {
		t.Fatal("nil blinding accepted")
	}
	if _, err := p.CombineOpenings(); err == nil {
		t.Fatal("empty combine accepted")
	}
	if _, err := p.CombineOpenings(Opening{Values: []*big.Int{big.NewInt(1)}}); err == nil {
		t.Fatal("opening without blinding accepted")
	}
}

func TestBlindingGeneratorIndependent(t *testing.T) {
	// The blinding generator must differ from every vector generator
	// (same derivation with a colliding label would break hiding).
	p := setup(t, 16)
	h := p.BlindingGenerator()
	for i := 0; i < 16; i++ {
		if h.Equal(p.generators(16)[i]) {
			t.Fatalf("blinding generator equals vector generator %d", i)
		}
	}
	// Stable across calls and instances.
	p2, err := Setup(group.Secp256r1Fast(), 4, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Equal(p2.BlindingGenerator()) {
		t.Fatal("blinding generator not deterministic")
	}
}
