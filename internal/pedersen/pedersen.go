// Package pedersen implements the deterministic Pedersen vector commitments
// used by the paper for verifiable aggregation (§IV-A).
//
// A commitment to a vector v = (v₀ … v_{n−1}) is C = ∏ hᵢ^{vᵢ}, where the
// hᵢ are public generators with unknown mutual discrete logarithms. The
// commitment is vector-binding under the discrete-logarithm assumption and
// additively homomorphic: C(v₁)·C(v₂) = C(v₁+v₂), which is exactly what lets
// the directory service verify that an aggregator's update equals the sum of
// the trainers' gradients without seeing the gradients.
package pedersen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime/pprof"
	"sync"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

// Commitment is an opaque serialized commitment (an encoded curve point).
type Commitment []byte

// Equal reports whether two commitments are byte-identical. Encodings are
// canonical, so this coincides with group-element equality.
func (c Commitment) Equal(other Commitment) bool { return bytes.Equal(c, other) }

// Params holds the public parameters for committing to vectors of up to
// Len() elements.
type Params struct {
	curve *group.Curve
	label string
	field *scalar.Field

	mu       sync.Mutex
	gens     []group.Point
	blinding group.Point // lazily derived hiding generator
}

// Setup deterministically derives public parameters for vectors of length n
// on the given curve. Generators are derived by hashing (label, index) to
// curve points, so all parties compute identical parameters without trusted
// setup. Additional generators are derived lazily if longer vectors are
// later committed through Extend.
func Setup(curve *group.Curve, n int, label string) (*Params, error) {
	if n < 0 {
		return nil, fmt.Errorf("pedersen: negative vector length %d", n)
	}
	p := &Params{
		curve: curve,
		label: label,
		field: scalar.NewField(curve.N),
	}
	if err := p.Extend(n); err != nil {
		return nil, err
	}
	return p, nil
}

// Curve returns the underlying curve.
func (p *Params) Curve() *group.Curve { return p.curve }

// Field returns the scalar field of the commitment group.
func (p *Params) Field() *scalar.Field { return p.field }

// Label returns the domain-separation label used to derive generators.
func (p *Params) Label() string { return p.label }

// Len returns the number of generators currently derived.
func (p *Params) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.gens)
}

// Extend makes sure at least n generators are available.
func (p *Params) Extend(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.gens); i < n; i++ {
		p.gens = append(p.gens, p.curve.HashToPoint(p.label, i))
	}
	return nil
}

// generators returns the first n generators, deriving more as needed.
func (p *Params) generators(n int) []group.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.gens); i < n; i++ {
		p.gens = append(p.gens, p.curve.HashToPoint(p.label, i))
	}
	return p.gens[:n]
}

// Commit commits to the vector v using the automatically selected
// multi-exponentiation strategy.
func (p *Params) Commit(v []*big.Int) (Commitment, error) {
	return p.CommitWith(v, group.StrategyAuto)
}

// CommitWith commits to v using an explicit multi-exponentiation strategy.
func (p *Params) CommitWith(v []*big.Int, strategy group.MultiExpStrategy) (Commitment, error) {
	if len(v) == 0 {
		return nil, errors.New("pedersen: cannot commit to an empty vector")
	}
	defer accountOp("pedersen_commit", len(v))()
	var out Commitment
	var err error
	// Label the commit's CPU samples (phase=pedersen_commit); the inner
	// MultiScalarMult narrows them further to its strategy.
	pprof.Do(context.Background(), pprof.Labels("phase", "pedersen_commit"), func(context.Context) {
		injectAlloc()
		gens := p.generators(len(v))
		var point group.Point
		point, err = p.curve.MultiScalarMult(gens, v, strategy)
		if err == nil {
			out = Commitment(p.curve.Encode(point))
		}
	})
	if err != nil {
		return nil, fmt.Errorf("pedersen: %w", err)
	}
	return out, nil
}

// Verify reports whether C is the commitment to v, by recomputing the
// commitment (§IV-A: "given the vector and the commitment, one can verify it
// is a valid pre-image by re-running this computation").
func (p *Params) Verify(v []*big.Int, c Commitment) (bool, error) {
	want, err := p.Commit(v)
	if err != nil {
		return false, err
	}
	return want.Equal(c), nil
}

// Combine homomorphically combines commitments: the result commits to the
// element-wise field sum of the committed vectors.
func (p *Params) Combine(cs ...Commitment) (Commitment, error) {
	if len(cs) == 0 {
		return nil, errors.New("pedersen: nothing to combine")
	}
	acc := group.Infinity()
	for i, c := range cs {
		pt, err := p.curve.Decode(c)
		if err != nil {
			return nil, fmt.Errorf("pedersen: commitment %d: %w", i, err)
		}
		acc = p.curve.Add(acc, pt)
	}
	return Commitment(p.curve.Encode(acc)), nil
}

// Identity returns the commitment to the all-zero vector, the neutral
// element for Combine.
func (p *Params) Identity() Commitment {
	return Commitment(p.curve.Encode(group.Infinity()))
}

// Valid reports whether c decodes to a point on the curve.
func (p *Params) Valid(c Commitment) bool {
	_, err := p.curve.Decode(c)
	return err == nil
}
