// Package pedersen implements the deterministic Pedersen vector commitments
// used by the paper for verifiable aggregation (§IV-A).
//
// A commitment to a vector v = (v₀ … v_{n−1}) is C = ∏ hᵢ^{vᵢ}, where the
// hᵢ are public generators with unknown mutual discrete logarithms. The
// commitment is vector-binding under the discrete-logarithm assumption and
// additively homomorphic: C(v₁)·C(v₂) = C(v₁+v₂), which is exactly what lets
// the directory service verify that an aggregator's update equals the sum of
// the trainers' gradients without seeing the gradients.
package pedersen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime/pprof"
	"sync"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

// Commitment is an opaque serialized commitment (an encoded curve point).
type Commitment []byte

// Equal reports whether two commitments are byte-identical. Encodings are
// canonical, so this coincides with group-element equality.
func (c Commitment) Equal(other Commitment) bool { return bytes.Equal(c, other) }

// DefaultPrecomputeLimit bounds how many generators get fixed-base window
// tables. Each table stores 15 Jacobian multiples (~2–3.6 KB with math/big
// coordinates), so the default caps table memory at roughly 25 MB while
// covering every realistic per-partition commitment width; the Fig. 3
// sweep extends Params to millions of generators and must not drag table
// memory along with it. Vectors longer than the covered prefix fall back
// to the regular multiexp strategies.
const DefaultPrecomputeLimit = 8192

// Params holds the public parameters for committing to vectors of up to
// Len() elements.
type Params struct {
	curve *group.Curve
	label string
	field *scalar.Field

	mu       sync.Mutex
	gens     []group.Point
	blinding group.Point // lazily derived hiding generator

	// fixed holds fixed-base window tables for the generator prefix
	// gens[:len(fixed)] (built in Setup/Extend — generators never change
	// within a session, so the tables amortize across every Commit).
	// Guarded by mu; entries are immutable once appended, so a Commit
	// that snapshots the slice under mu may use it lock-free afterwards.
	fixed        []*group.FixedBase
	precompLimit int
}

// Setup deterministically derives public parameters for vectors of length n
// on the given curve. Generators are derived by hashing (label, index) to
// curve points, so all parties compute identical parameters without trusted
// setup. Additional generators are derived lazily if longer vectors are
// later committed through Extend.
func Setup(curve *group.Curve, n int, label string) (*Params, error) {
	if n < 0 {
		return nil, fmt.Errorf("pedersen: negative vector length %d", n)
	}
	p := &Params{
		curve:        curve,
		label:        label,
		field:        scalar.NewField(curve.N),
		precompLimit: DefaultPrecomputeLimit,
	}
	if err := p.Extend(n); err != nil {
		return nil, err
	}
	return p, nil
}

// Curve returns the underlying curve.
func (p *Params) Curve() *group.Curve { return p.curve }

// Field returns the scalar field of the commitment group.
func (p *Params) Field() *scalar.Field { return p.field }

// Label returns the domain-separation label used to derive generators.
func (p *Params) Label() string { return p.label }

// Len returns the number of generators currently derived.
func (p *Params) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.gens)
}

// SetPrecomputeLimit bounds how many generators carry fixed-base window
// tables (default DefaultPrecomputeLimit). Raising the limit builds the
// missing tables immediately for already-derived generators; n ≤ 0
// disables precomputation for generators derived from then on. Safe to
// call concurrently with Commit.
func (p *Params) SetPrecomputeLimit(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 {
		n = 0
	}
	p.precompLimit = n
	p.buildTablesLocked(len(p.gens))
}

// PrecomputedLen returns how many generators currently have fixed-base
// tables.
func (p *Params) PrecomputedLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.fixed)
}

// Extend makes sure at least n generators are available, building their
// fixed-base tables (up to the precompute limit) at the same time so a
// commitment never observes a generator without its table.
func (p *Params) Extend(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extendLocked(n)
	return nil
}

func (p *Params) extendLocked(n int) {
	for i := len(p.gens); i < n; i++ {
		p.gens = append(p.gens, p.curve.HashToPoint(p.label, i))
	}
	p.buildTablesLocked(n)
}

// buildTablesLocked grows the fixed-base table prefix to cover min(n,
// limit) generators. Accelerated curves skip tables entirely: their commit
// path goes through the stdlib backend, which the generic Jacobian tables
// cannot feed.
func (p *Params) buildTablesLocked(n int) {
	if p.curve.Accelerated() {
		return
	}
	limit := p.precompLimit
	if n > limit {
		n = limit
	}
	if n > len(p.gens) {
		n = len(p.gens)
	}
	for i := len(p.fixed); i < n; i++ {
		p.fixed = append(p.fixed, p.curve.NewFixedBase(p.gens[i]))
	}
}

// generators returns the first n generators, deriving more as needed.
func (p *Params) generators(n int) []group.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extendLocked(n)
	return p.gens[:n]
}

// fixedPrefix returns fixed-base tables covering the first n generators.
// When force is set, missing tables are built past the precompute limit
// (explicit StrategyPrecomputed requests); otherwise it reports false if
// the prefix is not already covered. The returned slice is safe to read
// without the lock: entries are immutable and appends never reuse indices.
func (p *Params) fixedPrefix(n int, force bool) ([]*group.FixedBase, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.extendLocked(n)
	if len(p.fixed) < n {
		if !force {
			return nil, false
		}
		for i := len(p.fixed); i < n; i++ {
			p.fixed = append(p.fixed, p.curve.NewFixedBase(p.gens[i]))
		}
	}
	return p.fixed[:n], true
}

// Commit commits to the vector v using the automatically selected
// multi-exponentiation strategy.
func (p *Params) Commit(v []*big.Int) (Commitment, error) {
	return p.CommitWith(v, group.StrategyAuto)
}

// commitFixedMax is the vector length above which StrategyAuto prefers
// Pippenger (sequential or parallel) over the fixed-base tables: the
// shared-doubling walk over 4-bit tables costs ~(scalar bits/4)·n point
// additions, while Pippenger's bucket windows grow with n, so past ~100
// elements the tables stop paying for their lookups (measured with
// fixed-point gradient scalars on secp256k1).
const commitFixedMax = 96

// CommitWith commits to v using an explicit multi-exponentiation strategy.
// StrategyAuto routes through the precomputed generator tables when they
// cover the vector (see Setup/Extend and SetPrecomputeLimit) and the
// vector is short enough for the fixed-base walk to win; longer vectors
// use the regular multiexp auto-selection, including parallel Pippenger.
func (p *Params) CommitWith(v []*big.Int, strategy group.MultiExpStrategy) (Commitment, error) {
	if len(v) == 0 {
		return nil, errors.New("pedersen: cannot commit to an empty vector")
	}
	defer accountOp("pedersen_commit", len(v))()
	var out Commitment
	var err error
	// Label the commit's CPU samples (phase=pedersen_commit); the inner
	// MultiScalarMult narrows them further to its strategy.
	pprof.Do(context.Background(), pprof.Labels("phase", "pedersen_commit"), func(context.Context) {
		injectAlloc()
		var point group.Point
		switch {
		case strategy == group.StrategyPrecomputed:
			bases, _ := p.fixedPrefix(len(v), true)
			point, err = p.curve.MultiScalarMultFixed(bases, v)
		case strategy == group.StrategyAuto && !p.curve.Accelerated() && len(v) <= commitFixedMax:
			if bases, ok := p.fixedPrefix(len(v), false); ok {
				point, err = p.curve.MultiScalarMultFixed(bases, v)
				break
			}
			fallthrough
		default:
			gens := p.generators(len(v))
			point, err = p.curve.MultiScalarMult(gens, v, strategy)
		}
		if err == nil {
			out = Commitment(p.curve.Encode(point))
		}
	})
	if err != nil {
		return nil, fmt.Errorf("pedersen: %w", err)
	}
	return out, nil
}

// Verify reports whether C is the commitment to v, by recomputing the
// commitment (§IV-A: "given the vector and the commitment, one can verify it
// is a valid pre-image by re-running this computation").
func (p *Params) Verify(v []*big.Int, c Commitment) (bool, error) {
	want, err := p.Commit(v)
	if err != nil {
		return false, err
	}
	return want.Equal(c), nil
}

// Combine homomorphically combines commitments: the result commits to the
// element-wise field sum of the committed vectors.
func (p *Params) Combine(cs ...Commitment) (Commitment, error) {
	if len(cs) == 0 {
		return nil, errors.New("pedersen: nothing to combine")
	}
	acc := group.Infinity()
	for i, c := range cs {
		pt, err := p.curve.Decode(c)
		if err != nil {
			return nil, fmt.Errorf("pedersen: commitment %d: %w", i, err)
		}
		acc = p.curve.Add(acc, pt)
	}
	return Commitment(p.curve.Encode(acc)), nil
}

// Uncombine homomorphically removes a commitment from an accumulator:
// the result commits to the element-wise field difference of the
// committed vectors. It is Combine's inverse — the directory uses it to
// expunge a proven-Byzantine gradient from a partition accumulator
// without recombining every honest commitment from scratch.
func (p *Params) Uncombine(acc, c Commitment) (Commitment, error) {
	accPt, err := p.curve.Decode(acc)
	if err != nil {
		return nil, fmt.Errorf("pedersen: accumulator: %w", err)
	}
	pt, err := p.curve.Decode(c)
	if err != nil {
		return nil, fmt.Errorf("pedersen: removed commitment: %w", err)
	}
	return Commitment(p.curve.Encode(p.curve.Add(accPt, p.curve.Neg(pt)))), nil
}

// Identity returns the commitment to the all-zero vector, the neutral
// element for Combine.
func (p *Params) Identity() Commitment {
	return Commitment(p.curve.Encode(group.Infinity()))
}

// Valid reports whether c decodes to a point on the curve.
func (p *Params) Valid(c Commitment) bool {
	_, err := p.curve.Decode(c)
	return err == nil
}
