package pedersen

import (
	"math/big"
	"math/rand"
	"testing"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

func setup(t *testing.T, n int) *Params {
	t.Helper()
	p, err := Setup(group.Secp256r1Fast(), n, "test")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randomVector(rng *rand.Rand, q *scalar.Quantizer, n int) []*big.Int {
	vec := make([]float64, n)
	for i := range vec {
		vec[i] = (rng.Float64() - 0.5) * 10
	}
	enc, err := q.EncodeVec(vec)
	if err != nil {
		panic(err)
	}
	return enc
}

func TestCommitVerify(t *testing.T) {
	p := setup(t, 8)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(1))
	v := randomVector(rng, q, 8)
	c, err := p.Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Verify(v, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid commitment failed verification")
	}
}

func TestVerifyRejectsAlteredVector(t *testing.T) {
	p := setup(t, 8)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(2))
	v := randomVector(rng, q, 8)
	c, err := p.Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	altered := make([]*big.Int, len(v))
	copy(altered, v)
	altered[3] = p.Field().Add(altered[3], big.NewInt(1))
	ok, err := p.Verify(altered, c)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("altered vector passed verification")
	}
}

func TestHomomorphism(t *testing.T) {
	// Combine(C(v1), C(v2)) must equal C(v1 + v2): the core property the
	// whole verifiable-aggregation design relies on (§IV-A).
	for _, curve := range []*group.Curve{group.Secp256k1(), group.Secp256r1Fast()} {
		p, err := Setup(curve, 16, "homomorphism")
		if err != nil {
			t.Fatal(err)
		}
		q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
		rng := rand.New(rand.NewSource(3))
		v1 := randomVector(rng, q, 16)
		v2 := randomVector(rng, q, 16)
		v3 := randomVector(rng, q, 16)
		c1, _ := p.Commit(v1)
		c2, _ := p.Commit(v2)
		c3, _ := p.Commit(v3)
		combined, err := p.Combine(c1, c2, c3)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := p.Field().SumVecs(v1, v2, v3)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := p.Commit(sum)
		if !combined.Equal(want) {
			t.Fatalf("%s: homomorphism violated", curve.Name)
		}
	}
}

func TestUncombine(t *testing.T) {
	// Uncombine must invert Combine: removing one commitment from an
	// accumulator leaves the commitment to the sum of the others — the
	// directory's Byzantine-expunge path depends on this.
	p := setup(t, 8)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(11))
	v1 := randomVector(rng, q, 8)
	v2 := randomVector(rng, q, 8)
	v3 := randomVector(rng, q, 8)
	c1, _ := p.Commit(v1)
	c2, _ := p.Commit(v2)
	c3, _ := p.Commit(v3)
	acc, err := p.Combine(c1, c2, c3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Uncombine(acc, c2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Combine(c1, c3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("Uncombine(Combine(c1,c2,c3), c2) != Combine(c1,c3)")
	}
	// Removing the last commitment lands on the identity.
	only, err := p.Uncombine(c1, c1)
	if err != nil {
		t.Fatal(err)
	}
	if !only.Equal(p.Identity()) {
		t.Fatal("Uncombine(c, c) != Identity")
	}
}

func TestCombineIdentity(t *testing.T) {
	p := setup(t, 4)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(4))
	v := randomVector(rng, q, 4)
	c, _ := p.Commit(v)
	got, err := p.Combine(c, p.Identity())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c) {
		t.Fatal("identity commitment is not neutral for Combine")
	}
}

func TestStrategiesProduceSameCommitment(t *testing.T) {
	p := setup(t, 40)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(5))
	v := randomVector(rng, q, 40)
	want, err := p.CommitWith(v, group.StrategyNaive)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []group.MultiExpStrategy{group.StrategyWindowed, group.StrategyPippenger, group.StrategyAuto} {
		got, err := p.CommitWith(v, s)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("strategy %v produced a different commitment", s)
		}
	}
}

func TestDeterministicSetup(t *testing.T) {
	p1, err := Setup(group.Secp256k1(), 4, "task-1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Setup(group.Secp256k1(), 4, "task-1")
	if err != nil {
		t.Fatal(err)
	}
	v := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3), big.NewInt(4)}
	c1, _ := p1.Commit(v)
	c2, _ := p2.Commit(v)
	if !c1.Equal(c2) {
		t.Fatal("same label produced different parameters")
	}
	p3, err := Setup(group.Secp256k1(), 4, "task-2")
	if err != nil {
		t.Fatal(err)
	}
	c3, _ := p3.Commit(v)
	if c1.Equal(c3) {
		t.Fatal("different labels produced identical parameters")
	}
}

func TestExtendGrowsLazily(t *testing.T) {
	p := setup(t, 2)
	if p.Len() != 2 {
		t.Fatalf("expected 2 generators, got %d", p.Len())
	}
	v := []*big.Int{big.NewInt(1), big.NewInt(2), big.NewInt(3), big.NewInt(4), big.NewInt(5)}
	if _, err := p.Commit(v); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5 {
		t.Fatalf("expected lazy extension to 5 generators, got %d", p.Len())
	}
	if err := p.Extend(10); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 10 {
		t.Fatalf("expected 10 generators, got %d", p.Len())
	}
}

func TestCommitErrors(t *testing.T) {
	p := setup(t, 2)
	if _, err := p.Commit(nil); err == nil {
		t.Fatal("expected error for empty vector")
	}
	if _, err := p.Combine(); err == nil {
		t.Fatal("expected error for empty combine")
	}
	if _, err := p.Combine(Commitment([]byte{1, 2, 3})); err == nil {
		t.Fatal("expected error for malformed commitment")
	}
	if _, err := Setup(group.Secp256k1(), -1, "x"); err == nil {
		t.Fatal("expected error for negative length")
	}
}

func TestValid(t *testing.T) {
	p := setup(t, 2)
	c, _ := p.Commit([]*big.Int{big.NewInt(1), big.NewInt(2)})
	if !p.Valid(c) {
		t.Fatal("valid commitment rejected")
	}
	if p.Valid(Commitment([]byte{0xff})) {
		t.Fatal("garbage accepted as commitment")
	}
}

func TestDistinctVectorsDistinctCommitments(t *testing.T) {
	// Binding smoke test: random distinct vectors must not collide.
	p := setup(t, 6)
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(6))
	seen := make(map[string]bool)
	for i := 0; i < 20; i++ {
		v := randomVector(rng, q, 6)
		c, _ := p.Commit(v)
		key := string(c)
		if seen[key] {
			t.Fatal("commitment collision on distinct random vectors")
		}
		seen[key] = true
	}
}
