package pedersen

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"

	"ipls/internal/group"
	"ipls/internal/scalar"
)

// TestPrecomputedMatchesNaive checks the fixed-base commit path (both the
// auto route through the tables and an explicit StrategyPrecomputed
// request) against the naive recommitment on generic and accelerated
// curves.
func TestPrecomputedMatchesNaive(t *testing.T) {
	for _, curve := range []*group.Curve{group.Secp256k1(), group.Secp256r1(), group.Secp256r1Fast()} {
		p, err := Setup(curve, 24, "precomp")
		if err != nil {
			t.Fatal(err)
		}
		q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
		rng := rand.New(rand.NewSource(41))
		v := randomVector(rng, q, 24)
		want, err := p.CommitWith(v, group.StrategyNaive)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []group.MultiExpStrategy{group.StrategyPrecomputed, group.StrategyAuto, group.StrategyParallel} {
			got, err := p.CommitWith(v, s)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: strategy %v produced a different commitment", curve.Name, s)
			}
		}
	}
}

// TestPrecomputeLimit pins the table-budget behavior: generators beyond
// the limit stay table-less (the Fig. 3 sweep must not drag gigabytes of
// tables behind its 10M-generator Params), commits past the covered
// prefix still verify, and raising the limit backfills.
func TestPrecomputeLimit(t *testing.T) {
	p, err := Setup(group.Secp256k1(), 4, "limit")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PrecomputedLen(); got != 4 {
		t.Fatalf("expected 4 precomputed tables after Setup, got %d", got)
	}
	p.SetPrecomputeLimit(6)
	if err := p.Extend(10); err != nil {
		t.Fatal(err)
	}
	if got := p.PrecomputedLen(); got != 6 {
		t.Fatalf("expected tables capped at 6, got %d", got)
	}

	// A commit wider than the covered prefix must fall back and verify.
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(42))
	v := randomVector(rng, q, 10)
	c, err := p.Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := p.Verify(v, c); err != nil || !ok {
		t.Fatalf("fallback commit failed verification: ok=%v err=%v", ok, err)
	}

	p.SetPrecomputeLimit(DefaultPrecomputeLimit)
	if got := p.PrecomputedLen(); got != 10 {
		t.Fatalf("raising the limit should backfill to 10 tables, got %d", got)
	}
}

// TestPrecomputeSkipsAcceleratedCurves: the stdlib backend never reads the
// generic Jacobian tables, so building them would be pure memory waste.
func TestPrecomputeSkipsAcceleratedCurves(t *testing.T) {
	p, err := Setup(group.Secp256r1Fast(), 16, "fast")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PrecomputedLen(); got != 0 {
		t.Fatalf("accelerated curve built %d tables, want 0", got)
	}
}

// TestConcurrentCommitSharedParams is the race-detector coverage the ISSUE
// asks for: many goroutines committing through one Params (auto strategy,
// so the fixed tables and, for wide vectors, the parallel multiexp are all
// exercised) must neither race nor disagree.
func TestConcurrentCommitSharedParams(t *testing.T) {
	p, err := Setup(group.Secp256k1(), 16, "concurrent")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(43))
	v := randomVector(rng, q, 16)
	want, err := p.Commit(v)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make([]Commitment, 16)
	errs := make([]error, 16)
	for g := range got {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g], errs[g] = p.Commit(v)
		}(g)
	}
	wg.Wait()
	for g := range got {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		if !got[g].Equal(want) {
			t.Fatalf("goroutine %d produced a different commitment", g)
		}
	}
}

// TestExtendUnderConcurrentReaders extends Params while other goroutines
// commit and verify through it: no reader may ever observe a generator
// without its table (a half-built state would commit with a wrong point
// and fail verification).
func TestExtendUnderConcurrentReaders(t *testing.T) {
	p, err := Setup(group.Secp256k1(), 2, "extend-race")
	if err != nil {
		t.Fatal(err)
	}
	q, _ := scalar.NewQuantizer(p.Field(), scalar.DefaultShift)
	rng := rand.New(rand.NewSource(44))
	vecs := make([][]*big.Int, 6)
	for i := range vecs {
		vecs[i] = randomVector(rng, q, 2+3*i) // widths force interleaved extension
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := vecs[(g+i)%len(vecs)]
				c, err := p.Commit(v)
				if err != nil {
					fail <- err.Error()
					return
				}
				ok, err := p.Verify(v, c)
				if err != nil {
					fail <- err.Error()
					return
				}
				if !ok {
					fail <- "commit under concurrent Extend failed verification"
					return
				}
			}
		}(g)
	}
	for n := 4; n <= 64; n *= 2 {
		if err := p.Extend(n); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}
}
