//go:build !race

package pedersen

const raceEnabled = false
