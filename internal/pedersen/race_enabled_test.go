//go:build race

package pedersen

// raceEnabled reports whether the race detector is compiled in; tests that
// count allocations skip under it (the race runtime allocates shadow state
// unpredictably, making testing.AllocsPerRun too noisy to assert on).
const raceEnabled = true
