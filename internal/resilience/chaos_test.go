package resilience_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/obs"
	"ipls/internal/resilience"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// TestChaosCrashMidRoundConverges is the end-to-end resilience scenario: a
// multi-iteration verifiable session over three storage nodes (replication
// factor 2) in which the provider node crashes in the middle of a round —
// after the trainers uploaded, before the aggregator merged. The session
// must complete every iteration with the exact averaged model, riding on
// replica failover for the crashed provider's blocks, and the failure must
// be visible in the failover metrics.
func TestChaosCrashMidRoundConverges(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "chaos", ModelDim: 24, Partitions: 2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  1,
		Verifiable:              true,
		TTrain:                  5 * time.Second,
		TSync:                   5 * time.Second,
		PollInterval:            2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 2)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(params, netw)
	cfg.ApplyAssignments(dir)

	reg := obs.NewRegistry()
	pol := &resilience.Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Jitter:      0.2,
		RPCTimeout:  2 * time.Second,
		Seed:        11,
		Metrics:     reg,
	}
	client := resilience.Wrap(netw, field, pol)
	sess, err := core.NewSession(cfg, client.Storage(), resilience.WrapDirectory(dir, pol))
	if err != nil {
		t.Fatal(err)
	}

	// The node the fault plan kills: where partition 0's trainers upload,
	// so the aggregator's merge-and-download must fail over.
	crashNode := cfg.UploadNode(0, cfg.Trainers[0])
	const iters = 5
	const crashIter = 2
	plan, err := storage.ParseFaultPlan(fmt.Sprintf("crash:%s@iter%d", crashNode, crashIter))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for iter := 0; iter < iters; iter++ {
		deltas := make(map[string][]float64)
		want := make([]float64, cfg.Spec.Dim)
		for _, tr := range cfg.Trainers {
			d := make([]float64, cfg.Spec.Dim)
			for i := range d {
				d[i] = rng.NormFloat64()
				want[i] += d[i] / float64(len(cfg.Trainers))
			}
			deltas[tr] = d
		}

		var avg []float64
		if iter == crashIter {
			// Drive the round phase by phase so the crash lands mid-round:
			// the gradients are already on the doomed node when it dies.
			for _, tr := range cfg.Trainers {
				if err := sess.TrainerUpload(ctx, tr, iter, deltas[tr]); err != nil {
					t.Fatalf("iter %d upload %s: %v", iter, tr, err)
				}
			}
			applied, err := plan.Apply(netw, iter)
			if err != nil {
				t.Fatal(err)
			}
			if len(applied) != 1 {
				t.Fatalf("fault plan applied %v, want one crash", applied)
			}
			for _, ref := range cfg.AllAggregators() {
				if _, err := sess.AggregatorRun(ctx, ref.ID, ref.Partition, iter, core.BehaviorHonest); err != nil {
					t.Fatalf("iter %d aggregator %s with %s crashed: %v", iter, ref.ID, crashNode, err)
				}
			}
			avg, err = sess.TrainerCollect(ctx, iter)
			if err != nil {
				t.Fatalf("iter %d collect: %v", iter, err)
			}
		} else {
			res, err := sess.RunIteration(ctx, iter, deltas, nil)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if len(res.Incomplete) > 0 {
				t.Fatalf("iter %d incomplete partitions: %v", iter, res.Incomplete)
			}
			avg = res.AvgDelta
		}
		for i := range want {
			if math.Abs(avg[i]-want[i]) > 1e-6 {
				t.Fatalf("iter %d param %d: got %v want %v", iter, i, avg[i], want[i])
			}
		}
	}

	var failovers int64
	for _, op := range []string{"get", "merge_get"} {
		failovers += reg.Counter("failovers_total", "op", op).Value()
	}
	if failovers == 0 {
		t.Fatalf("session survived the crash of %s without a single recorded failover", crashNode)
	}
	var retries int64
	for _, op := range []string{"put", "get", "merge_get", "fetch"} {
		retries += reg.Counter("rpc_retries_total", "op", op).Value()
	}
	if retries == 0 {
		t.Fatal("no retries recorded despite a crashed storage node")
	}
}

// TestChaosCrashedRoundBreakdownStaysValid reruns the crash-mid-round
// scenario with span collection on and asserts the observability contract
// holds through failover: every span closes (End not before Start, both
// set), and every iteration — including the one that rode replica
// failover — folds into a critical-path breakdown whose phase durations
// sum exactly to the iteration latency. A span leaked open by an error
// path would surface here as a zero End or a phase/latency mismatch.
func TestChaosCrashedRoundBreakdownStaysValid(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "chaos-spans", ModelDim: 24, Partitions: 2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  1,
		Verifiable:              true,
		TTrain:                  5 * time.Second,
		TSync:                   5 * time.Second,
		PollInterval:            2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 2)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(params, netw)
	cfg.ApplyAssignments(dir)

	pol := &resilience.Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Jitter:      0.2,
		RPCTimeout:  2 * time.Second,
		Seed:        11,
	}
	client := resilience.Wrap(netw, field, pol)
	sess, err := core.NewSession(cfg, client.Storage(), resilience.WrapDirectory(dir, pol))
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewSpanCollector(0)
	sess.SetSpans(col)
	netw.SetSpans(col)

	crashNode := cfg.UploadNode(0, cfg.Trainers[0])
	const iters = 3
	const crashIter = 1
	plan, err := storage.ParseFaultPlan(fmt.Sprintf("crash:%s@iter%d", crashNode, crashIter))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for iter := 0; iter < iters; iter++ {
		deltas := make(map[string][]float64)
		for _, tr := range cfg.Trainers {
			d := make([]float64, cfg.Spec.Dim)
			for i := range d {
				d[i] = rng.NormFloat64()
			}
			deltas[tr] = d
		}
		if iter == crashIter {
			for _, tr := range cfg.Trainers {
				if err := sess.TrainerUpload(ctx, tr, iter, deltas[tr]); err != nil {
					t.Fatalf("iter %d upload %s: %v", iter, tr, err)
				}
			}
			if _, err := plan.Apply(netw, iter); err != nil {
				t.Fatal(err)
			}
			for _, ref := range cfg.AllAggregators() {
				if _, err := sess.AggregatorRun(ctx, ref.ID, ref.Partition, iter, core.BehaviorHonest); err != nil {
					t.Fatalf("iter %d aggregator %s: %v", iter, ref.ID, err)
				}
			}
			if _, err := sess.TrainerCollect(ctx, iter); err != nil {
				t.Fatalf("iter %d collect: %v", iter, err)
			}
		} else {
			res, err := sess.RunIteration(ctx, iter, deltas, nil)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if len(res.Incomplete) > 0 {
				t.Fatalf("iter %d incomplete partitions: %v", iter, res.Incomplete)
			}
		}
	}

	spans := col.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans collected")
	}
	for _, sp := range spans {
		if sp.Start.IsZero() || sp.End.IsZero() {
			t.Fatalf("span %s (%s) not closed: start=%v end=%v", sp.Name, sp.Actor, sp.Start, sp.End)
		}
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %s (%s) ends before it starts: %v -> %v", sp.Name, sp.Actor, sp.Start, sp.End)
		}
	}

	breakdowns := obs.BreakdownTrace(spans)
	seen := make(map[int]bool)
	for _, b := range breakdowns {
		if b.Session != cfg.TaskID {
			continue
		}
		seen[b.Iter] = true
		if b.Latency <= 0 {
			t.Fatalf("iter %d: non-positive latency %v", b.Iter, b.Latency)
		}
		var sum time.Duration
		for _, p := range b.Phases {
			if p.Duration < 0 {
				t.Fatalf("iter %d: negative phase %+v", b.Iter, p)
			}
			sum += p.Duration
		}
		if sum != b.Latency {
			t.Fatalf("iter %d: phase sum %v != latency %v", b.Iter, sum, b.Latency)
		}
	}
	for iter := 0; iter < iters; iter++ {
		if !seen[iter] {
			t.Fatalf("no breakdown for iteration %d (crash iteration was %d)", iter, crashIter)
		}
	}
}
