package resilience_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/ml"
	"ipls/internal/obs"
	"ipls/internal/resilience"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// newRejoinTask builds an ML training task whose session reaches storage
// and the directory through the resilience layer, over six replicated
// storage nodes with rendezvous placement — the topology the churn
// chaos scenario below crashes parts of.
func newRejoinTask(t *testing.T, reg *obs.Registry) (*core.Task, *storage.Network, *ml.Dataset) {
	t.Helper()
	const trainers = 8
	m := ml.NewLogistic(4, 4)
	data := ml.Blobs(480, 4, 4, 0.8, 77)
	names := make([]string, trainers)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	stores := make([]string, 6)
	for i := range stores {
		stores[i] = fmt.Sprintf("ipfs-%02d", i)
	}
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID:                  "churn-chaos",
		ModelDim:                m.Dim(),
		Partitions:              2,
		Trainers:                names,
		AggregatorsPerPartition: 1,
		StorageNodes:            stores,
		TTrain:                  400 * time.Millisecond,
		TSync:                   5 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 2)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	netw.SetPlacement(storage.PlacementRendezvous)
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(params, netw)
	cfg.ApplyAssignments(dir)
	pol := &resilience.Policy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Jitter:      0.2,
		RPCTimeout:  2 * time.Second,
		Seed:        11,
		Metrics:     reg,
	}
	client := resilience.Wrap(netw, field, pol)
	sess, err := core.NewSession(cfg, client.Storage(), resilience.WrapDirectory(dir, pol))
	if err != nil {
		t.Fatal(err)
	}
	splits, err := data.SplitIID(trainers, 78)
	if err != nil {
		t.Fatal(err)
	}
	locals := make(map[string]*ml.Dataset, trainers)
	for i, name := range names {
		locals[name] = splits[i]
	}
	sgd := ml.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}
	task, err := core.NewTask(sess, m, locals, sgd, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	return task, netw, data
}

func linfDiff(a, b []float64) float64 {
	var max float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// TestChaosTrainerRejoinRestoresFromCheckpoint is the rejoin-path chaos
// scenario: trainer t5 crashes in round 1 and rejoins in round 2,
// bootstrapping from the latest checkpoint DAG, while an independent
// transient storage fault (ipfs-04 down for rounds 1-2) is live across
// the same rounds. The session must complete every round, the rejoin
// must ride exactly one checkpoint bootstrap, replication must be whole
// after the final repair scan, and the final model must match a
// fault-free reference run within tolerance. The closing Restore proves
// the on-DAG checkpoint reproduces the trained model bit-for-bit.
func TestChaosTrainerRejoinRestoresFromCheckpoint(t *testing.T) {
	const rounds = 4
	ctx := context.Background()

	// Reference: the identical task with no churn and no faults. Trainer
	// SGD is seeded per (round, trainer), so the runs differ only by the
	// churn below.
	ref, _, data := newRejoinTask(t, nil)
	for round := 0; round < rounds; round++ {
		metrics, res, err := ref.RunRound(ctx, nil)
		if err != nil {
			t.Fatalf("reference round %d: %v", round, err)
		}
		if !metrics.Applied {
			t.Fatalf("reference round %d not applied (incomplete %v)", round, res.Incomplete)
		}
	}

	reg := obs.NewRegistry()
	task, netw, _ := newRejoinTask(t, reg)
	netw.SetMetrics(reg)
	faults, err := storage.ParseFaultPlan("crash:ipfs-04@iter1,recover:ipfs-04@iter3")
	if err != nil {
		t.Fatal(err)
	}
	churn, err := storage.ParseChurnPlan("crash:t5@iter1,rejoin:t5@iter2")
	if err != nil {
		t.Fatal(err)
	}
	runner := core.NewChurnRunner(task, netw, churn)
	runner.SetMetrics(reg)
	for round := 0; round < rounds; round++ {
		if _, err := faults.Apply(netw, round); err != nil {
			t.Fatalf("round %d fault plan: %v", round, err)
		}
		metrics, res, applied, err := runner.RunRound(ctx)
		if err != nil {
			t.Fatalf("round %d (churn %v): %v", round, applied, err)
		}
		if !metrics.Applied {
			t.Fatalf("round %d not applied (churn %v, incomplete %v)", round, applied, res.Incomplete)
		}
	}
	if task.Round() != rounds {
		t.Fatalf("completed %d rounds, want %d", task.Round(), rounds)
	}
	if got := reg.Counter("trainer_bootstraps_total").Value(); got != 1 {
		t.Fatalf("trainer_bootstraps_total = %d, want 1 (the t5 rejoin)", got)
	}
	if got := len(netw.UnderReplicated()); got != 0 {
		t.Fatalf("%d blocks under-replicated after the final repair scan", got)
	}

	// One missed trainer-round must not knock the model off the
	// fault-free trajectory: the global averages re-absorb t5's share
	// once it is back.
	refAcc, _, err := ref.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	acc, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("churned run did not converge: accuracy %v", acc)
	}
	if d := math.Abs(acc - refAcc); d > 0.05 {
		t.Fatalf("accuracy drifted %v from the fault-free run (%v vs %v)", d, acc, refAcc)
	}
	if d := linfDiff(task.Global(), ref.Global()); d > 0.2 {
		t.Fatalf("final model drifted %v (L∞) from the fault-free run", d)
	}

	// The runner checkpoints after every round, so restoring the latest
	// checkpoint from the DAG must reproduce the final global exactly.
	ckpt, ok := runner.Checkpoint()
	if !ok {
		t.Fatal("runner took no checkpoint")
	}
	final := append([]float64(nil), task.Global()...)
	live := netw.LiveNodes()
	if len(live) == 0 {
		t.Fatal("no live storage node to restore from")
	}
	if err := task.Restore(ctx, netw, live[0], ckpt); err != nil {
		t.Fatalf("restore from checkpoint %s: %v", ckpt.CID.Short(), err)
	}
	if d := linfDiff(task.Global(), final); d != 0 {
		t.Fatalf("restored model differs from trained model by %v", d)
	}
}
