package resilience

import (
	"context"
	"fmt"
	"time"

	"ipls/internal/directory"
	"ipls/internal/pedersen"
)

// DirectoryService is the full directory surface the resilient wrapper
// requires: the session's core view plus the batch-publish, scheduling and
// cleanup capabilities the session discovers structurally. All three
// concrete directories in this repo (*directory.Service, *distdir.Sharded,
// *transport.Client) implement it, so requiring the whole surface costs
// nothing and keeps the wrapper from silently hiding a capability.
type DirectoryService interface {
	Publish(ctx context.Context, rec directory.Record) error
	Lookup(ctx context.Context, addr directory.Addr) (directory.Record, error)
	GradientsFor(ctx context.Context, iter, partition int, aggregator string) []directory.Record
	PartialUpdates(ctx context.Context, iter, partition int) []directory.Record
	Update(ctx context.Context, iter, partition int) (directory.Record, error)
	PartitionAccumulator(ctx context.Context, iter, partition int) (pedersen.Commitment, error)
	AggregatorAccumulator(ctx context.Context, iter, partition int, aggregator string) (pedersen.Commitment, int, error)
	VerifyPartialUpdate(ctx context.Context, iter, partition int, aggregator string, data []byte) (bool, error)
	PublishBatch(ctx context.Context, recs []directory.Record) error
	SetSchedule(iter int, tTrain time.Time)
	RecordsForIter(iter int) []directory.Record
}

// Directory layers the policy's timeouts and retries over a directory
// client. Publishing the same record twice is idempotent in the directory
// (a retry after an applied-but-unacknowledged publish returns nil, not
// ErrConflict), which is what makes blind retries of Publish safe.
type Directory struct {
	inner  DirectoryService
	policy *Policy
}

// WrapDirectory builds a resilient directory client over inner. A nil
// policy means one attempt, no timeouts.
func WrapDirectory(inner DirectoryService, p *Policy) *Directory {
	return &Directory{inner: inner, policy: p}
}

func (d *Directory) Publish(ctx context.Context, rec directory.Record) error {
	return d.policy.run(ctx, "publish", func(actx context.Context) error {
		return d.inner.Publish(actx, rec)
	})
}

func (d *Directory) PublishBatch(ctx context.Context, recs []directory.Record) error {
	return d.policy.run(ctx, "publish_batch", func(actx context.Context) error {
		return d.inner.PublishBatch(actx, recs)
	})
}

func (d *Directory) Lookup(ctx context.Context, addr directory.Addr) (directory.Record, error) {
	var rec directory.Record
	err := d.policy.run(ctx, "lookup", func(actx context.Context) error {
		var e error
		rec, e = d.inner.Lookup(actx, addr)
		return e
	})
	return rec, err
}

func (d *Directory) Update(ctx context.Context, iter, partition int) (directory.Record, error) {
	var rec directory.Record
	err := d.policy.run(ctx, "update", func(actx context.Context) error {
		var e error
		rec, e = d.inner.Update(actx, iter, partition)
		return e
	})
	return rec, err
}

func (d *Directory) PartitionAccumulator(ctx context.Context, iter, partition int) (pedersen.Commitment, error) {
	var com pedersen.Commitment
	err := d.policy.run(ctx, "partition_accumulator", func(actx context.Context) error {
		var e error
		com, e = d.inner.PartitionAccumulator(actx, iter, partition)
		return e
	})
	return com, err
}

func (d *Directory) AggregatorAccumulator(ctx context.Context, iter, partition int, aggregator string) (pedersen.Commitment, int, error) {
	var com pedersen.Commitment
	var n int
	err := d.policy.run(ctx, "aggregator_accumulator", func(actx context.Context) error {
		var e error
		com, n, e = d.inner.AggregatorAccumulator(actx, iter, partition, aggregator)
		return e
	})
	return com, n, err
}

func (d *Directory) VerifyPartialUpdate(ctx context.Context, iter, partition int, aggregator string, data []byte) (bool, error) {
	var ok bool
	err := d.policy.run(ctx, "verify_partial_update", func(actx context.Context) error {
		var e error
		ok, e = d.inner.VerifyPartialUpdate(actx, iter, partition, aggregator, data)
		return e
	})
	return ok, err
}

// GradientsFor and PartialUpdates report no error, so there is nothing to
// retry on; they forward under the per-attempt timeout only.

func (d *Directory) GradientsFor(ctx context.Context, iter, partition int, aggregator string) []directory.Record {
	actx, cancel := d.policy.attemptCtx(ctx)
	defer cancel()
	return d.inner.GradientsFor(actx, iter, partition, aggregator)
}

func (d *Directory) PartialUpdates(ctx context.Context, iter, partition int) []directory.Record {
	actx, cancel := d.policy.attemptCtx(ctx)
	defer cancel()
	return d.inner.PartialUpdates(actx, iter, partition)
}

func (d *Directory) SetSchedule(iter int, tTrain time.Time) { d.inner.SetSchedule(iter, tTrain) }

func (d *Directory) RecordsForIter(iter int) []directory.Record { return d.inner.RecordsForIter(iter) }

// byzantineDirectory is the optional Byzantine-tolerance surface. Only
// *directory.Service implements it today, so the wrapper forwards by
// assertion rather than growing DirectoryService and forcing stubs onto
// every directory implementation.
type byzantineDirectory interface {
	ExpungeGradient(ctx context.Context, addr directory.Addr) error
	Quarantine(trainer string, fromIter int)
}

// ExpungeGradient forwards to the inner directory when it supports
// Byzantine expunge, and reports directory.ErrNotFound-independent
// unsupported errors otherwise so callers can degrade gracefully.
func (d *Directory) ExpungeGradient(ctx context.Context, addr directory.Addr) error {
	bd, ok := d.inner.(byzantineDirectory)
	if !ok {
		return fmt.Errorf("resilience: directory %T does not support expunge", d.inner)
	}
	return d.policy.run(ctx, "expunge_gradient", func(actx context.Context) error {
		return bd.ExpungeGradient(actx, addr)
	})
}

// Quarantine forwards to the inner directory when supported; otherwise it
// is a no-op (quarantine is an optimization, not a correctness
// requirement — unverifiable uploads are still rejected per round).
func (d *Directory) Quarantine(trainer string, fromIter int) {
	if bd, ok := d.inner.(byzantineDirectory); ok {
		bd.Quarantine(trainer, fromIter)
	}
}
