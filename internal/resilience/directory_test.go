package resilience_test

import (
	"context"
	"errors"
	"testing"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/distdir"
	"ipls/internal/obs"
	"ipls/internal/resilience"
	"ipls/internal/storage"
	"ipls/internal/transport"
)

// Every concrete directory in the repo must offer the full surface the
// resilient wrapper forwards, and the wrapper must remain a core.Directory.
var (
	_ resilience.DirectoryService = (*directory.Service)(nil)
	_ resilience.DirectoryService = (*distdir.Sharded)(nil)
	_ resilience.DirectoryService = (*transport.Client)(nil)
	_ core.Directory              = (*resilience.Directory)(nil)
	_ resilience.DirectoryService = (*resilience.Directory)(nil)
)

// flakyDir fails the first failures Lookup calls with the given error,
// then reports directory.ErrNotFound (terminal, distinguishable).
type flakyDir struct {
	*directory.Service
	failures int
	calls    int
	err      error
}

func (f *flakyDir) Lookup(ctx context.Context, addr directory.Addr) (directory.Record, error) {
	f.calls++
	if f.calls <= f.failures {
		return directory.Record{}, f.err
	}
	return directory.Record{}, directory.ErrNotFound
}

func TestDirectoryRetriesTransientLookupFailures(t *testing.T) {
	reg := obs.NewRegistry()
	pol := &resilience.Policy{MaxAttempts: 4, Metrics: reg, Sleep: noSleep}
	inner := &flakyDir{Service: directory.New(nil, nil), failures: 2, err: storage.ErrNodeDown}
	d := resilience.WrapDirectory(inner, pol)

	_, err := d.Lookup(context.Background(), directory.Addr{Uploader: "t0"})
	if !errors.Is(err, directory.ErrNotFound) {
		t.Fatalf("got %v, want the post-recovery ErrNotFound", err)
	}
	if inner.calls != 3 {
		t.Fatalf("lookup attempts = %d, want 3", inner.calls)
	}
	if v := reg.Counter("rpc_retries_total", "op", "lookup").Value(); v != 2 {
		t.Fatalf("rpc_retries_total{op=lookup} = %d, want 2", v)
	}
}

func TestDirectoryDoesNotRetryProtocolVerdicts(t *testing.T) {
	pol := &resilience.Policy{MaxAttempts: 4, Sleep: noSleep}
	inner := &flakyDir{Service: directory.New(nil, nil), failures: 4, err: directory.ErrConflict}
	d := resilience.WrapDirectory(inner, pol)

	if _, err := d.Lookup(context.Background(), directory.Addr{Uploader: "t0"}); !errors.Is(err, directory.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	if inner.calls != 1 {
		t.Fatalf("protocol verdict retried: %d attempts", inner.calls)
	}
}
