package resilience_test

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/core"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/resilience"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// The resilient adapter must plug into every socket the session probes.
var _ storage.Client = resilience.Wrap(nil, nil, nil).Storage()

func fastPolicy(reg *obs.Registry) *resilience.Policy {
	return &resilience.Policy{MaxAttempts: 2, Metrics: reg, Sleep: noSleep}
}

func testNetwork(t *testing.T, replicas int, nodes ...string) (*storage.Network, *scalar.Field) {
	t.Helper()
	field := scalar.NewField(big.NewInt(2147483647)) // 2^31-1, prime
	n := storage.NewNetwork(field, replicas)
	for _, id := range nodes {
		n.AddNode(id)
	}
	return n, field
}

func TestGetFailsOverToReplica(t *testing.T) {
	netw, _ := testNetwork(t, 2, "s0", "s1", "s2")
	reg := obs.NewRegistry()
	c := resilience.Wrap(netw, nil, fastPolicy(reg))

	data := []byte("replicated block")
	id, err := c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if err := netw.Fail("s0"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(context.Background(), storage.GetRequest{Node: "s0", CID: id})
	if err != nil {
		t.Fatalf("Get with crashed holder: %v", err)
	}
	if string(got) != string(data) {
		t.Fatalf("failover returned %q", got)
	}
	if v := reg.Counter("failovers_total", "op", "get").Value(); v != 1 {
		t.Fatalf("failovers_total{op=get} = %d, want 1", v)
	}
	if v := reg.Counter("rpc_retries_total", "op", "get").Value(); v != 1 {
		t.Fatalf("rpc_retries_total{op=get} = %d, want 1", v)
	}
}

func TestGetFailoverExhaustedWhenNoReplicaSurvives(t *testing.T) {
	netw, _ := testNetwork(t, 1, "s0", "s1") // replication off: the block has one home
	c := resilience.Wrap(netw, nil, fastPolicy(nil))

	id, err := c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: []byte("lonely")})
	if err != nil {
		t.Fatal(err)
	}
	if err := netw.Fail("s0"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), storage.GetRequest{Node: "s0", CID: id})
	if !errors.Is(err, storage.ErrNodeDown) {
		t.Fatalf("got %v, want the holder's ErrNodeDown", err)
	}
}

func encodeBlocks(t *testing.T, c *resilience.Client, node string, vals ...int64) ([]cid.CID, model.Block) {
	t.Helper()
	field := scalar.NewField(big.NewInt(2147483647))
	var cids []cid.CID
	var blocks []model.Block
	for _, v := range vals {
		b := model.Block{Values: []*big.Int{big.NewInt(v), big.NewInt(1)}}
		data, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.Put(context.Background(), storage.PutRequest{Node: node, Data: data})
		if err != nil {
			t.Fatal(err)
		}
		cids = append(cids, id)
		blocks = append(blocks, b)
	}
	sum, err := model.Sum(field, blocks...)
	if err != nil {
		t.Fatal(err)
	}
	return cids, sum
}

func TestMergeGetDegradesToLocalFold(t *testing.T) {
	netw, field := testNetwork(t, 2, "s0", "s1", "s2")
	reg := obs.NewRegistry()
	c := resilience.Wrap(netw, field, fastPolicy(reg))

	cids, want := encodeBlocks(t, c, "s0", 3, 5, 7)
	if err := netw.Fail("s0"); err != nil {
		t.Fatal(err)
	}
	data, err := c.MergeGet(context.Background(), storage.MergeRequest{Node: "s0", CIDs: cids})
	if err != nil {
		t.Fatalf("MergeGet with crashed provider: %v", err)
	}
	got, err := model.DecodeBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	wantData, _ := want.Encode()
	if string(data) != string(wantData) {
		t.Fatalf("degraded merge = %v, want %v", got.Values, want.Values)
	}
	if v := reg.Counter("failovers_total", "op", "merge_get").Value(); v != 1 {
		t.Fatalf("failovers_total{op=merge_get} = %d, want 1", v)
	}
}

func TestMergeGetWithoutFieldSurfacesProviderError(t *testing.T) {
	netw, _ := testNetwork(t, 2, "s0", "s1")
	c := resilience.Wrap(netw, nil, fastPolicy(nil)) // no field: degradation off

	cids, _ := encodeBlocks(t, c, "s0", 1, 2)
	if err := netw.Fail("s0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MergeGet(context.Background(), storage.MergeRequest{Node: "s0", CIDs: cids}); !errors.Is(err, storage.ErrNodeDown) {
		t.Fatalf("got %v, want ErrNodeDown", err)
	}
}

func TestStorageViewKeepsPubSubCapabilityTruthful(t *testing.T) {
	netw, field := testNetwork(t, 1, "s0")
	withPS := resilience.Wrap(netw, field, nil).Storage()
	if _, ok := withPS.(core.Announcer); !ok {
		t.Fatal("pub/sub-capable inner lost Announcer through the wrapper")
	}
	withPS.(core.Announcer).Announce("topic", "s0", []byte("hello"))
	if msgs, _ := withPS.(core.Announcer).Listen("topic", 0); len(msgs) != 1 {
		t.Fatalf("announcement did not round-trip: %d messages", len(msgs))
	}

	plain := resilience.Wrap(&flakyStore{}, field, nil).Storage()
	if _, ok := plain.(core.Announcer); ok {
		t.Fatal("wrapper advertised pub/sub over an inner client without it")
	}
}

func TestSlowNodeRecoveredByAttemptTimeout(t *testing.T) {
	netw, _ := testNetwork(t, 2, "s0", "s1")
	reg := obs.NewRegistry()
	pol := &resilience.Policy{MaxAttempts: 2, RPCTimeout: 20 * time.Millisecond, Metrics: reg, Sleep: noSleep}
	c := resilience.Wrap(netw, nil, pol)

	id, err := c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: []byte("slow block")})
	if err != nil {
		t.Fatal(err)
	}
	// The holder is pathologically slow; each attempt times out, then the
	// content-routed failover — which skips the slow node's service delay
	// only if another replica holds the block — saves the read.
	if err := netw.Slow("s0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, err := c.Get(context.Background(), storage.GetRequest{Node: "s0", CID: id})
	if err != nil {
		t.Fatalf("Get from slow holder: %v", err)
	}
	if string(got) != "slow block" {
		t.Fatalf("got %q", got)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("read took %v despite 20ms attempt timeouts", elapsed)
	}
	if v := reg.Counter("failovers_total", "op", "get").Value(); v != 1 {
		t.Fatalf("failovers_total{op=get} = %d, want 1", v)
	}
}
