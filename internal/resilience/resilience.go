// Package resilience wraps the storage and directory clients with the
// self-healing behaviour a long-lived FL deployment needs: per-RPC
// timeouts, bounded retries with exponential backoff and jitter, and
// replica failover. The paper's protocol already tolerates slow trainers
// through t_train deadlines (§III-D); this layer extends the same spirit
// to the substrate, exploiting the storage network's replication (§IV) the
// way IPFS exploits multiple providers — a block is not lost because the
// node first asked for it is.
//
// The wrappers are policy-driven and observable: every retry bumps
// rpc_retries_total{op=...}, every failover bumps failovers_total{op=...},
// and an optional span sink records the recovery cost in the causal trace.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"

	"ipls/internal/directory"
	"ipls/internal/obs"
	"ipls/internal/storage"
)

// IsRetryable classifies an error from a storage or directory client.
// Retryable errors are transient infrastructure failures — retrying the
// same call may succeed, and a replica may be able to serve it:
//
//   - storage.ErrNodeDown (crashed, flaky, or unreachable node)
//   - context.DeadlineExceeded (a per-attempt timeout elapsed)
//   - directory.ErrTooEarly (the gradient set has not closed yet)
//   - network transport failures (net.Error, rpc.ErrShutdown)
//
// Everything else is terminal: protocol verdicts such as
// directory.ErrConflict, ErrAlreadyFinal, ErrVerificationFailed,
// ErrTooLate and ErrBadSignature will not change on retry, addressing
// errors (storage.ErrUnknownNode) are caller bugs, storage.ErrNotFound
// means no replica holds the block, and context.Canceled means the caller
// gave up.
func IsRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	if errors.Is(err, storage.ErrNodeDown) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, directory.ErrTooEarly) ||
		errors.Is(err, rpc.ErrShutdown) {
		return true
	}
	var netErr net.Error
	return errors.As(err, &netErr)
}

// Policy configures the resilience wrappers. The zero value is usable and
// means "no retries, no timeouts": every knob opts in.
type Policy struct {
	// MaxAttempts bounds how many times an operation is tried (minimum 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles each
	// retry up to MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
	// Jitter spreads each backoff uniformly over ±Jitter fraction of
	// itself (0..1), decorrelating retry storms across clients.
	Jitter float64
	// RPCTimeout bounds each individual attempt (0 = only the caller's
	// context limits it). The caller's deadline always applies on top.
	RPCTimeout time.Duration
	// Seed makes the jitter sequence reproducible (0 = fixed default
	// seed, still deterministic).
	Seed int64

	// Metrics receives rpc_retries_total and failovers_total counters
	// (nil discards them).
	Metrics *obs.Registry
	// Spans, when set, receives one span per retry wait and per failover,
	// so traces show what recovery cost.
	Spans obs.SpanSink

	// Sleep replaces the backoff wait, for deterministic tests. It must
	// honor the context. Nil uses a timer.
	Sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	rng *rand.Rand
}

// DefaultPolicy is a sensible starting point: four attempts, 25ms base
// backoff doubling to 400ms, 20% jitter, one-second per-attempt timeout.
func DefaultPolicy() *Policy {
	return &Policy{
		MaxAttempts: 4,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  400 * time.Millisecond,
		Jitter:      0.2,
		RPCTimeout:  time.Second,
	}
}

// attempts returns the effective attempt bound.
func (p *Policy) attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the jittered delay before retry number attempt (0-based).
func (p *Policy) backoff(attempt int) time.Duration {
	if p == nil || p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 0; i < attempt && (p.MaxBackoff <= 0 || d < p.MaxBackoff); i++ {
		d *= 2
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		p.mu.Lock()
		if p.rng == nil {
			seed := p.Seed
			if seed == 0 {
				seed = 1
			}
			p.rng = rand.New(rand.NewSource(seed))
		}
		f := 1 + p.Jitter*(2*p.rng.Float64()-1)
		p.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// wait sleeps for the backoff duration, honoring the context.
func (p *Policy) wait(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if p != nil && p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// attemptCtx derives the per-attempt context from the caller's.
func (p *Policy) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p == nil || p.RPCTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.RPCTimeout)
}

// run executes fn under the policy: per-attempt timeout, bounded retries
// on retryable errors, backoff between attempts. The op label tags the
// rpc_retries_total counter.
func (p *Policy) run(ctx context.Context, op string, fn func(ctx context.Context) error) error {
	attempts := p.attempts()
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		actx, cancel := p.attemptCtx(ctx)
		err = fn(actx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller's own deadline/cancellation, not the attempt's:
			// surface it rather than retrying for a dead caller.
			return ctx.Err()
		}
		if !IsRetryable(err) || attempt == attempts-1 {
			return err
		}
		if p != nil {
			p.Metrics.Counter("rpc_retries_total", "op", op).Inc()
		}
		if werr := p.wait(ctx, p.backoff(attempt)); werr != nil {
			return err
		}
	}
	return err
}

// emitSpan records a recovery event (retry or failover) in the trace.
func (p *Policy) emitSpan(name, op string, start time.Time, err error) {
	if p == nil || p.Spans == nil {
		return
	}
	sp := obs.Span{
		Name:    name,
		Actor:   "resilience",
		Context: obs.SpanContext{Session: "resilience", SpanID: obs.NewSpanID()},
		Start:   start,
		End:     time.Now(),
		Attrs:   map[string]string{"op": op},
	}
	if err != nil {
		sp.Attrs["error"] = err.Error()
	}
	p.Spans.EmitSpan(sp)
}
