package resilience_test

import (
	"context"
	"errors"
	"fmt"
	"net/rpc"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/directory"
	"ipls/internal/obs"
	"ipls/internal/resilience"
	"ipls/internal/storage"
)

func TestIsRetryable(t *testing.T) {
	retryable := []error{
		storage.ErrNodeDown,
		fmt.Errorf("wrapped: %w", storage.ErrNodeDown),
		context.DeadlineExceeded,
		directory.ErrTooEarly,
		rpc.ErrShutdown,
	}
	for _, err := range retryable {
		if !resilience.IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = false, want true", err)
		}
	}
	terminal := []error{
		nil,
		context.Canceled,
		storage.ErrNotFound,
		storage.ErrUnknownNode,
		directory.ErrConflict,
		directory.ErrAlreadyFinal,
		directory.ErrVerificationFailed,
		directory.ErrMissingCommitment,
		directory.ErrTooLate,
		directory.ErrBadSignature,
		errors.New("some application error"),
	}
	for _, err := range terminal {
		if resilience.IsRetryable(err) {
			t.Errorf("IsRetryable(%v) = true, want false", err)
		}
	}
}

// flakyStore fails the first failures calls of each operation with a
// transient error, then delegates to nothing (returns canned data).
type flakyStore struct {
	failures int
	puts     int
	gets     int
	merges   int
	err      error
}

func (f *flakyStore) transient() error {
	if f.err != nil {
		return f.err
	}
	return storage.ErrNodeDown
}

func (f *flakyStore) Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	f.puts++
	if f.puts <= f.failures {
		return "", f.transient()
	}
	return cid.Sum(data), nil
}

func (f *flakyStore) Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error) {
	f.gets++
	if f.gets <= f.failures {
		return nil, f.transient()
	}
	return []byte("block"), nil
}

func (f *flakyStore) MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	f.merges++
	if f.merges <= f.failures {
		return nil, f.transient()
	}
	return []byte("merged"), nil
}

func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestRetryUntilSuccess(t *testing.T) {
	reg := obs.NewRegistry()
	pol := &resilience.Policy{MaxAttempts: 4, BaseBackoff: time.Millisecond, Metrics: reg, Sleep: noSleep}
	inner := &flakyStore{failures: 2}
	c := resilience.Wrap(inner, nil, pol)

	id, err := c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: []byte("x")})
	if err != nil {
		t.Fatalf("Put after transient failures: %v", err)
	}
	if !(cid.Sum([]byte("x")) == id) {
		t.Fatal("Put returned wrong CID")
	}
	if inner.puts != 3 {
		t.Fatalf("put attempts = %d, want 3 (two failures, one success)", inner.puts)
	}
	if got := reg.Counter("rpc_retries_total", "op", "put").Value(); got != 2 {
		t.Fatalf("rpc_retries_total{op=put} = %d, want 2", got)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	reg := obs.NewRegistry()
	pol := &resilience.Policy{MaxAttempts: 3, Metrics: reg, Sleep: noSleep}
	inner := &flakyStore{failures: 100}
	c := resilience.Wrap(inner, nil, pol)

	_, err := c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: []byte("x")})
	if !errors.Is(err, storage.ErrNodeDown) {
		t.Fatalf("exhausted retries should surface the inner error, got %v", err)
	}
	if inner.puts != 3 {
		t.Fatalf("put attempts = %d, want 3", inner.puts)
	}
	if got := reg.Counter("rpc_retries_total", "op", "put").Value(); got != 2 {
		t.Fatalf("rpc_retries_total{op=put} = %d, want 2", got)
	}
}

func TestTerminalErrorNotRetried(t *testing.T) {
	pol := &resilience.Policy{MaxAttempts: 5, Sleep: noSleep}
	inner := &flakyStore{failures: 100, err: directory.ErrConflict}
	c := resilience.Wrap(inner, nil, pol)

	_, err := c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: []byte("x")})
	if !errors.Is(err, directory.ErrConflict) {
		t.Fatalf("got %v, want ErrConflict", err)
	}
	if inner.puts != 1 {
		t.Fatalf("terminal error retried: %d attempts", inner.puts)
	}
}

func TestCallerCancellationStopsRetries(t *testing.T) {
	pol := &resilience.Policy{MaxAttempts: 10, BaseBackoff: time.Millisecond}
	inner := &flakyStore{failures: 100}
	c := resilience.Wrap(inner, nil, pol)

	ctx, cancel := context.WithCancel(context.Background())
	pol.Sleep = func(sctx context.Context, d time.Duration) error {
		cancel() // the caller gives up while the client is backing off
		return sctx.Err()
	}
	_, err := c.Put(ctx, storage.PutRequest{Node: "s0", Data: []byte("x")})
	if err == nil {
		t.Fatal("expected an error after cancellation")
	}
	if inner.puts != 1 {
		t.Fatalf("retried %d times for a cancelled caller", inner.puts-1)
	}
}

func TestBackoffJitterIsDeterministicUnderSeed(t *testing.T) {
	record := func(seed int64) []time.Duration {
		var delays []time.Duration
		pol := &resilience.Policy{
			MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond,
			Jitter: 0.5, Seed: seed,
			Sleep: func(ctx context.Context, d time.Duration) error {
				delays = append(delays, d)
				return nil
			},
		}
		inner := &flakyStore{failures: 100}
		c := resilience.Wrap(inner, nil, pol)
		_, _ = c.Put(context.Background(), storage.PutRequest{Node: "s0", Data: []byte("x")})
		return delays
	}

	a, b := record(42), record(42)
	if len(a) != 4 {
		t.Fatalf("recorded %d backoffs, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at backoff %d: %v vs %v", i, a[i], b[i])
		}
	}
	other := record(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
	// Exponential shape survives the jitter: each delay stays within
	// ±50% of base<<attempt (capped at 80ms).
	want := []time.Duration{10, 20, 40, 80}
	for i, d := range a {
		base := want[i] * time.Millisecond
		lo, hi := base/2, base+base/2
		if d < lo || d > hi {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	pol := &resilience.Policy{MaxAttempts: 2, RPCTimeout: 10 * time.Millisecond, Sleep: noSleep}
	calls := 0
	inner := &hangingStore{onGet: func(ctx context.Context) ([]byte, error) {
		calls++
		<-ctx.Done() // simulate a hung RPC; only the attempt timeout frees us
		return nil, ctx.Err()
	}}
	c := resilience.Wrap(inner, nil, pol)

	start := time.Now()
	_, err := c.Get(context.Background(), storage.GetRequest{Node: "s0", CID: "deadbeef"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if calls != 2 {
		t.Fatalf("hung RPC attempted %d times, want 2", calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("two 10ms attempts took %v", elapsed)
	}
}

// hangingStore lets a test control Get directly.
type hangingStore struct {
	onGet func(ctx context.Context) ([]byte, error)
}

func (h *hangingStore) Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	return cid.Sum(data), nil
}

func (h *hangingStore) Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error) {
	return h.onGet(ctx)
}

func (h *hangingStore) MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	return nil, storage.ErrNotFound
}
