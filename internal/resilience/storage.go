package resilience

import (
	"context"
	"fmt"
	"time"

	"ipls/internal/cid"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// fetcher is the optional storage capability of content routing: find any
// live replica holding a block, by CID alone.
type fetcher interface {
	Fetch(ctx context.Context, c cid.CID) ([]byte, error)
}

// mergeSpanner is the optional storage capability of carrying a span
// context with a merge-and-download request.
type mergeSpanner interface {
	MergeGetSpan(ctx context.Context, nodeID string, cs []cid.CID, parent obs.SpanContext) ([]byte, error)
}

// putSpanner and getSpanner are the matching capabilities for uploads and
// downloads, so all three request structs carry the causal envelope across
// the storage boundary uniformly.
type putSpanner interface {
	PutSpan(ctx context.Context, nodeID string, data []byte, parent obs.SpanContext) (cid.CID, error)
}

type getSpanner interface {
	GetSpan(ctx context.Context, nodeID string, c cid.CID, parent obs.SpanContext) ([]byte, error)
}

// announcer mirrors core.Announcer: the optional pub/sub capability the
// session discovers structurally. The resilient adapter re-exposes it only
// when the wrapped client has it, so capability detection stays truthful.
type announcer interface {
	Announce(topic, from string, data []byte)
	Listen(topic string, since int) ([]storage.Announcement, int)
	ForgetTopic(topic string)
}

// deleter is the optional storage capability of deleting a block from
// every replica (iteration cleanup).
type deleter interface {
	DeleteAll(c cid.CID)
}

// Client is the resilient storage client. It speaks the request-struct
// style (storage.PutRequest / GetRequest / MergeRequest) and layers the
// policy's timeouts and retries over the wrapped client, plus two
// failover strategies the flat API cannot express:
//
//   - Get: when the recorded holder cannot serve a block, re-route by
//     content (Fetch) to any surviving replica.
//   - MergeGet: when the provider cannot serve the merge, degrade to
//     fetching the gradient blocks individually and folding them locally.
//
// Use Storage() to obtain a positional storage.Client view for APIs like
// core.NewSession.
type Client struct {
	inner  storage.Client
	field  *scalar.Field
	policy *Policy
}

// Wrap builds a resilient client over inner. The field is needed only for
// MergeGet degradation (local folding); nil disables that fallback.
// A nil policy means one attempt, no timeouts.
func Wrap(inner storage.Client, field *scalar.Field, p *Policy) *Client {
	return &Client{inner: inner, field: field, policy: p}
}

// Put uploads a block under the policy's timeout and retry budget.
// Node-level fallback for uploads stays with the caller (the session's
// putWithFallback), which must know the node that actually accepted the
// block to record it truthfully in the directory.
func (c *Client) Put(ctx context.Context, req storage.PutRequest) (cid.CID, error) {
	var id cid.CID
	err := c.policy.run(ctx, "put", func(actx context.Context) error {
		var e error
		if req.Span.Valid() {
			if ps, ok := c.inner.(putSpanner); ok {
				id, e = ps.PutSpan(actx, req.Node, req.Data, req.Span)
				return e
			}
		}
		id, e = c.inner.Put(actx, req.Node, req.Data)
		return e
	})
	return id, err
}

// Get downloads a block from its recorded holder, failing over to content
// routing across surviving replicas when the holder cannot serve it. A
// failed-over block is CID-verified before being returned, so a byzantine
// replica cannot substitute data.
func (c *Client) Get(ctx context.Context, req storage.GetRequest) ([]byte, error) {
	var data []byte
	err := c.policy.run(ctx, "get", func(actx context.Context) error {
		var e error
		if req.Span.Valid() {
			if gs, ok := c.inner.(getSpanner); ok {
				data, e = gs.GetSpan(actx, req.Node, req.CID, req.Span)
				return e
			}
		}
		data, e = c.inner.Get(actx, req.Node, req.CID)
		return e
	})
	if err == nil {
		return data, nil
	}
	if ctx.Err() != nil {
		return nil, err
	}
	f, ok := c.inner.(fetcher)
	if !ok {
		return nil, err
	}
	start := time.Now()
	var fetched []byte
	ferr := c.policy.run(ctx, "fetch", func(actx context.Context) error {
		var e error
		fetched, e = f.Fetch(actx, req.CID)
		return e
	})
	if ferr != nil {
		// The holder's error names the real failure; the failover error
		// just says no replica could step in either.
		return nil, fmt.Errorf("%w (failover: %v)", err, ferr)
	}
	if !cid.Verify(fetched, req.CID) {
		return nil, fmt.Errorf("resilience: failover block %s failed CID verification", req.CID.Short())
	}
	c.countFailover("get")
	c.policy.emitSpan("failover", "get", start, nil)
	return fetched, nil
}

// Fetch routes a block by content under the policy, for callers that have
// no recorded holder at all. Returns storage.ErrNotFound identity when the
// wrapped client has no content routing.
func (c *Client) Fetch(ctx context.Context, id cid.CID) ([]byte, error) {
	f, ok := c.inner.(fetcher)
	if !ok {
		return nil, fmt.Errorf("%w: no content routing for %s", storage.ErrNotFound, id.Short())
	}
	var data []byte
	err := c.policy.run(ctx, "fetch", func(actx context.Context) error {
		var e error
		data, e = f.Fetch(actx, id)
		return e
	})
	return data, err
}

// MergeGet asks the provider to pre-aggregate the listed gradient blocks.
// When the provider cannot serve the merge, the client degrades: each
// block is fetched individually (itself with replica failover) and folded
// locally, trading the paper's provider-side aggregation bandwidth win for
// availability. The degraded path needs the scalar field; without it the
// provider's error is returned as-is.
func (c *Client) MergeGet(ctx context.Context, req storage.MergeRequest) ([]byte, error) {
	var out []byte
	err := c.policy.run(ctx, "merge_get", func(actx context.Context) error {
		var e error
		if req.Span.Valid() {
			if ms, ok := c.inner.(mergeSpanner); ok {
				out, e = ms.MergeGetSpan(actx, req.Node, req.CIDs, req.Span)
				return e
			}
		}
		out, e = c.inner.MergeGet(actx, req.Node, req.CIDs)
		return e
	})
	if err == nil {
		return out, nil
	}
	if ctx.Err() != nil || c.field == nil || len(req.CIDs) == 0 {
		return nil, err
	}
	start := time.Now()
	blocks := make([]model.Block, 0, len(req.CIDs))
	for _, id := range req.CIDs {
		data, gerr := c.degradedFetch(ctx, req.Node, id)
		if gerr != nil {
			return nil, fmt.Errorf("%w (degraded merge: %v)", err, gerr)
		}
		block, derr := model.DecodeBlock(data)
		if derr != nil {
			return nil, fmt.Errorf("%w (degraded merge: %v)", err, derr)
		}
		blocks = append(blocks, block)
	}
	sum, serr := model.Sum(c.field, blocks...)
	if serr != nil {
		return nil, fmt.Errorf("%w (degraded merge: %v)", err, serr)
	}
	data, eerr := sum.Encode()
	if eerr != nil {
		return nil, fmt.Errorf("%w (degraded merge: %v)", err, eerr)
	}
	c.countFailover("merge_get")
	c.policy.emitSpan("degraded_merge", "merge_get", start, nil)
	return data, nil
}

// degradedFetch retrieves one block for the local fold: content routing
// first when available (the provider is known to be struggling), the
// provider itself otherwise.
func (c *Client) degradedFetch(ctx context.Context, node string, id cid.CID) ([]byte, error) {
	if f, ok := c.inner.(fetcher); ok {
		var data []byte
		err := c.policy.run(ctx, "fetch", func(actx context.Context) error {
			var e error
			data, e = f.Fetch(actx, id)
			return e
		})
		if err == nil {
			if !cid.Verify(data, id) {
				return nil, fmt.Errorf("resilience: degraded-merge block %s failed CID verification", id.Short())
			}
			return data, nil
		}
		return nil, err
	}
	return c.Get(ctx, storage.GetRequest{Node: node, CID: id})
}

// countFailover bumps failovers_total{op=...}.
func (c *Client) countFailover(op string) {
	if c.policy != nil {
		c.policy.Metrics.Counter("failovers_total", "op", op).Inc()
	}
}

// Storage returns the positional storage.Client view of c, for APIs such
// as core.NewSession. The view forwards the optional capabilities the
// session discovers structurally — MergeGetSpan, Fetch, DeleteAll — and
// exposes pub/sub only when the wrapped client actually has it.
func (c *Client) Storage() storage.Client {
	base := store{c}
	if a, ok := c.inner.(announcer); ok {
		return pubsubStore{store: base, ann: a}
	}
	return base
}

// store adapts Client to the positional storage.Client interface.
type store struct {
	c *Client
}

var _ storage.Client = store{}
var _ fetcher = store{}
var _ mergeSpanner = store{}
var _ putSpanner = store{}
var _ getSpanner = store{}

func (s store) Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	return s.c.Put(ctx, storage.PutRequest{Node: nodeID, Data: data})
}

func (s store) Get(ctx context.Context, nodeID string, id cid.CID) ([]byte, error) {
	return s.c.Get(ctx, storage.GetRequest{Node: nodeID, CID: id})
}

func (s store) MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	return s.c.MergeGet(ctx, storage.MergeRequest{Node: nodeID, CIDs: cs})
}

func (s store) MergeGetSpan(ctx context.Context, nodeID string, cs []cid.CID, parent obs.SpanContext) ([]byte, error) {
	return s.c.MergeGet(ctx, storage.MergeRequest{Node: nodeID, CIDs: cs, Span: parent})
}

func (s store) PutSpan(ctx context.Context, nodeID string, data []byte, parent obs.SpanContext) (cid.CID, error) {
	return s.c.Put(ctx, storage.PutRequest{Node: nodeID, Data: data, Span: parent})
}

func (s store) GetSpan(ctx context.Context, nodeID string, c cid.CID, parent obs.SpanContext) ([]byte, error) {
	return s.c.Get(ctx, storage.GetRequest{Node: nodeID, CID: c, Span: parent})
}

func (s store) Fetch(ctx context.Context, id cid.CID) ([]byte, error) {
	return s.c.Fetch(ctx, id)
}

// DeleteAll forwards iteration cleanup when the wrapped client supports
// it. Cleanup is best-effort by design, so lacking the capability is not
// an error.
func (s store) DeleteAll(id cid.CID) {
	if d, ok := s.c.inner.(deleter); ok {
		d.DeleteAll(id)
	}
}

// pubsubStore is the store flavor for wrapped clients with pub/sub.
type pubsubStore struct {
	store
	ann announcer
}

var _ announcer = pubsubStore{}

func (p pubsubStore) Announce(topic, from string, data []byte) { p.ann.Announce(topic, from, data) }

func (p pubsubStore) Listen(topic string, since int) ([]storage.Announcement, int) {
	return p.ann.Listen(topic, since)
}

func (p pubsubStore) ForgetTopic(topic string) { p.ann.ForgetTopic(topic) }
