// Package scalar provides arithmetic in the prime-order scalar field of an
// elliptic-curve group, together with a deterministic fixed-point encoding of
// floating-point gradient values into field elements.
//
// The encoding is designed so that field addition of encoded values equals
// (the encoding of) real-number addition, which is what makes Pedersen
// commitments over gradients homomorphic end-to-end: the commitment to the
// sum of the trainers' quantized gradients equals the product of their
// individual commitments.
package scalar

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// ElementSize is the canonical serialized size of a field element in bytes.
// Both secp256k1 and secp256r1 have 256-bit orders, so 32 bytes suffice.
const ElementSize = 32

// Field performs arithmetic modulo a prime order.
type Field struct {
	order *big.Int
	half  *big.Int // order/2, used to decode signed values
}

// NewField returns a field with the given prime order. The order is copied.
func NewField(order *big.Int) *Field {
	n := new(big.Int).Set(order)
	return &Field{
		order: n,
		half:  new(big.Int).Rsh(n, 1),
	}
}

// Order returns a copy of the field order.
func (f *Field) Order() *big.Int { return new(big.Int).Set(f.order) }

// Reduce returns x mod order as a fresh value in [0, order).
func (f *Field) Reduce(x *big.Int) *big.Int {
	r := new(big.Int).Mod(x, f.order)
	return r
}

// Add returns (a + b) mod order.
func (f *Field) Add(a, b *big.Int) *big.Int {
	r := new(big.Int).Add(a, b)
	if r.Cmp(f.order) >= 0 {
		r.Sub(r, f.order)
	}
	return r
}

// Sub returns (a - b) mod order.
func (f *Field) Sub(a, b *big.Int) *big.Int {
	r := new(big.Int).Sub(a, b)
	if r.Sign() < 0 {
		r.Add(r, f.order)
	}
	return r
}

// Mul returns (a * b) mod order.
func (f *Field) Mul(a, b *big.Int) *big.Int {
	r := new(big.Int).Mul(a, b)
	return r.Mod(r, f.order)
}

// Neg returns (-a) mod order.
func (f *Field) Neg(a *big.Int) *big.Int {
	if a.Sign() == 0 {
		return new(big.Int)
	}
	return new(big.Int).Sub(f.order, a)
}

// Inv returns the multiplicative inverse of a mod order.
// It returns an error if a ≡ 0.
func (f *Field) Inv(a *big.Int) (*big.Int, error) {
	if new(big.Int).Mod(a, f.order).Sign() == 0 {
		return nil, errors.New("scalar: zero has no inverse")
	}
	return new(big.Int).ModInverse(a, f.order), nil
}

// AddVec returns the element-wise field sum of two equal-length vectors.
func (f *Field) AddVec(a, b []*big.Int) ([]*big.Int, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("scalar: vector length mismatch %d != %d", len(a), len(b))
	}
	out := make([]*big.Int, len(a))
	for i := range a {
		out[i] = f.Add(a[i], b[i])
	}
	return out, nil
}

// SumVecs returns the element-wise field sum of all vectors. All vectors must
// have the same length and there must be at least one.
func (f *Field) SumVecs(vecs ...[]*big.Int) ([]*big.Int, error) {
	if len(vecs) == 0 {
		return nil, errors.New("scalar: no vectors to sum")
	}
	n := len(vecs[0])
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	for _, v := range vecs {
		if len(v) != n {
			return nil, fmt.Errorf("scalar: vector length mismatch %d != %d", len(v), n)
		}
		for i := range v {
			acc[i] = f.Add(acc[i], v[i])
		}
	}
	return acc, nil
}

// Quantizer maps float64 values to field elements using two's-complement
// style fixed-point encoding with Shift fractional bits: x is encoded as
// round(x * 2^Shift) mod order, with negative values wrapping to the top of
// the field. Decoding treats elements above order/2 as negative.
//
// Additions of encoded values decode correctly as long as the magnitude of
// the true sum stays below 2^(256-Shift-1), which is astronomically larger
// than any gradient sum that occurs in practice.
type Quantizer struct {
	field *Field
	shift uint
	scale float64
}

// DefaultShift is the default number of fractional bits. 24 bits keeps
// per-element quantization error below 6e-8 while leaving over 200 bits of
// headroom for summation.
const DefaultShift = 24

// NewQuantizer creates a quantizer over the field with the given number of
// fractional bits. Shift must be in [1, 64).
func NewQuantizer(f *Field, shift uint) (*Quantizer, error) {
	if shift == 0 || shift >= 64 {
		return nil, fmt.Errorf("scalar: invalid shift %d", shift)
	}
	return &Quantizer{
		field: f,
		shift: shift,
		scale: math.Ldexp(1, int(shift)),
	}, nil
}

// Field returns the quantizer's underlying field.
func (q *Quantizer) Field() *Field { return q.field }

// Shift returns the number of fractional bits.
func (q *Quantizer) Shift() uint { return q.shift }

// Encode maps a float64 to a field element. NaN and infinities are rejected.
func (q *Quantizer) Encode(x float64) (*big.Int, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, fmt.Errorf("scalar: cannot encode %v", x)
	}
	scaled := math.Round(x * q.scale)
	// Values this large cannot round-trip through int64; gradients never
	// get near this, so treat it as caller error.
	if math.Abs(scaled) >= math.Ldexp(1, 62) {
		return nil, fmt.Errorf("scalar: value %v out of fixed-point range", x)
	}
	v := big.NewInt(int64(scaled))
	if v.Sign() < 0 {
		v.Add(v, q.field.order)
	}
	return v, nil
}

// Decode maps a field element back to float64, interpreting elements above
// order/2 as negative.
func (q *Quantizer) Decode(v *big.Int) float64 {
	r := new(big.Int).Mod(v, q.field.order)
	if r.Cmp(q.field.half) > 0 {
		r.Sub(r, q.field.order)
	}
	f, _ := new(big.Float).SetInt(r).Float64()
	return f / q.scale
}

// EncodeVec encodes every element of xs.
func (q *Quantizer) EncodeVec(xs []float64) ([]*big.Int, error) {
	out := make([]*big.Int, len(xs))
	for i, x := range xs {
		v, err := q.Encode(x)
		if err != nil {
			return nil, fmt.Errorf("scalar: element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecodeVec decodes every element of vs.
func (q *Quantizer) DecodeVec(vs []*big.Int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = q.Decode(v)
	}
	return out
}

// MarshalElement serializes a field element as a fixed 32-byte big-endian
// value.
func MarshalElement(v *big.Int) ([]byte, error) {
	if v.Sign() < 0 {
		return nil, errors.New("scalar: cannot marshal negative element")
	}
	if v.BitLen() > ElementSize*8 {
		return nil, fmt.Errorf("scalar: element too large (%d bits)", v.BitLen())
	}
	buf := make([]byte, ElementSize)
	v.FillBytes(buf)
	return buf, nil
}

// UnmarshalElement parses a fixed 32-byte big-endian field element.
func UnmarshalElement(b []byte) (*big.Int, error) {
	if len(b) != ElementSize {
		return nil, fmt.Errorf("scalar: element must be %d bytes, got %d", ElementSize, len(b))
	}
	return new(big.Int).SetBytes(b), nil
}
