package scalar

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// testOrder is the secp256k1 group order, a representative 256-bit prime.
var testOrder, _ = new(big.Int).SetString(
	"fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141", 16)

func testField() *Field { return NewField(testOrder) }

func randomElement(rng *rand.Rand, f *Field) *big.Int {
	b := make([]byte, 32)
	rng.Read(b)
	return f.Reduce(new(big.Int).SetBytes(b))
}

func TestFieldAddSubRoundTrip(t *testing.T) {
	f := testField()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a := randomElement(rng, f)
		b := randomElement(rng, f)
		got := f.Sub(f.Add(a, b), b)
		if got.Cmp(a) != 0 {
			t.Fatalf("(a+b)-b != a: a=%v b=%v got=%v", a, b, got)
		}
	}
}

func TestFieldAddCommutativeAssociative(t *testing.T) {
	f := testField()
	check := func(ab, bb, cb [32]byte) bool {
		a := f.Reduce(new(big.Int).SetBytes(ab[:]))
		b := f.Reduce(new(big.Int).SetBytes(bb[:]))
		c := f.Reduce(new(big.Int).SetBytes(cb[:]))
		if f.Add(a, b).Cmp(f.Add(b, a)) != 0 {
			return false
		}
		return f.Add(f.Add(a, b), c).Cmp(f.Add(a, f.Add(b, c))) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldMulDistributes(t *testing.T) {
	f := testField()
	check := func(ab, bb, cb [32]byte) bool {
		a := f.Reduce(new(big.Int).SetBytes(ab[:]))
		b := f.Reduce(new(big.Int).SetBytes(bb[:]))
		c := f.Reduce(new(big.Int).SetBytes(cb[:]))
		lhs := f.Mul(a, f.Add(b, c))
		rhs := f.Add(f.Mul(a, b), f.Mul(a, c))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldNeg(t *testing.T) {
	f := testField()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := randomElement(rng, f)
		if f.Add(a, f.Neg(a)).Sign() != 0 {
			t.Fatalf("a + (-a) != 0 for a=%v", a)
		}
	}
	if f.Neg(new(big.Int)).Sign() != 0 {
		t.Fatal("-0 != 0")
	}
}

func TestFieldInv(t *testing.T) {
	f := testField()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := randomElement(rng, f)
		if a.Sign() == 0 {
			continue
		}
		inv, err := f.Inv(a)
		if err != nil {
			t.Fatal(err)
		}
		if f.Mul(a, inv).Cmp(big.NewInt(1)) != 0 {
			t.Fatalf("a * a^-1 != 1 for a=%v", a)
		}
	}
	if _, err := f.Inv(new(big.Int)); err == nil {
		t.Fatal("expected error inverting zero")
	}
}

func TestFieldSumVecs(t *testing.T) {
	f := testField()
	a := []*big.Int{big.NewInt(1), big.NewInt(2)}
	b := []*big.Int{big.NewInt(10), big.NewInt(20)}
	c := []*big.Int{big.NewInt(100), big.NewInt(200)}
	got, err := f.SumVecs(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int64() != 111 || got[1].Int64() != 222 {
		t.Fatalf("bad sum: %v", got)
	}
	if _, err := f.SumVecs(); err == nil {
		t.Fatal("expected error on empty sum")
	}
	if _, err := f.SumVecs(a, []*big.Int{big.NewInt(1)}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := f.AddVec(a, []*big.Int{big.NewInt(1)}); err == nil {
		t.Fatal("expected length-mismatch error from AddVec")
	}
}

func TestQuantizerRoundTrip(t *testing.T) {
	f := testField()
	q, err := NewQuantizer(f, DefaultShift)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1.0 / math.Ldexp(1, DefaultShift-1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		x := (rng.Float64() - 0.5) * 200 // [-100, 100)
		v, err := q.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		got := q.Decode(v)
		if math.Abs(got-x) > eps {
			t.Fatalf("round trip error too large: x=%v got=%v", x, got)
		}
	}
}

func TestQuantizerNegativeValues(t *testing.T) {
	f := testField()
	q, _ := NewQuantizer(f, 16)
	v, err := q.Encode(-1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Negative values wrap to the top of the field.
	if v.Cmp(f.half) <= 0 {
		t.Fatalf("expected encoding above order/2, got %v", v)
	}
	if got := q.Decode(v); got != -1.5 {
		t.Fatalf("decode: got %v want -1.5", got)
	}
}

func TestQuantizerSumHomomorphism(t *testing.T) {
	f := testField()
	q, _ := NewQuantizer(f, DefaultShift)
	rng := rand.New(rand.NewSource(5))
	const trainers = 16
	const dim = 32
	encoded := make([][]*big.Int, trainers)
	trueSum := make([]float64, dim)
	for tr := 0; tr < trainers; tr++ {
		vec := make([]float64, dim)
		for i := range vec {
			vec[i] = (rng.Float64() - 0.5) * 2
			// The true sum of the *quantized* values is what must be
			// recovered exactly.
			trueSum[i] += math.Round(vec[i]*math.Ldexp(1, DefaultShift)) / math.Ldexp(1, DefaultShift)
		}
		enc, err := q.EncodeVec(vec)
		if err != nil {
			t.Fatal(err)
		}
		encoded[tr] = enc
	}
	sum, err := f.SumVecs(encoded...)
	if err != nil {
		t.Fatal(err)
	}
	dec := q.DecodeVec(sum)
	for i := range dec {
		if math.Abs(dec[i]-trueSum[i]) > 1e-9 {
			t.Fatalf("element %d: decoded sum %v != quantized true sum %v", i, dec[i], trueSum[i])
		}
	}
}

func TestQuantizerRejectsNonFinite(t *testing.T) {
	f := testField()
	q, _ := NewQuantizer(f, DefaultShift)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := q.Encode(x); err == nil {
			t.Fatalf("expected error encoding %v", x)
		}
	}
	if _, err := q.Encode(math.Ldexp(1, 60)); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestNewQuantizerValidation(t *testing.T) {
	f := testField()
	if _, err := NewQuantizer(f, 0); err == nil {
		t.Fatal("expected error for shift 0")
	}
	if _, err := NewQuantizer(f, 64); err == nil {
		t.Fatal("expected error for shift 64")
	}
}

func TestMarshalElementRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := testField()
	for i := 0; i < 100; i++ {
		v := randomElement(rng, f)
		b, err := MarshalElement(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != ElementSize {
			t.Fatalf("bad length %d", len(b))
		}
		got, err := UnmarshalElement(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(v) != 0 {
			t.Fatalf("round trip mismatch: %v != %v", got, v)
		}
	}
}

func TestMarshalElementErrors(t *testing.T) {
	if _, err := MarshalElement(big.NewInt(-1)); err == nil {
		t.Fatal("expected error for negative element")
	}
	tooBig := new(big.Int).Lsh(big.NewInt(1), 256)
	if _, err := MarshalElement(tooBig); err == nil {
		t.Fatal("expected error for oversized element")
	}
	if _, err := UnmarshalElement(make([]byte, 31)); err == nil {
		t.Fatal("expected error for short input")
	}
}
