package scenario

import (
	"ipls/internal/netsim"
	"ipls/internal/storage"
)

// Compilation: a parsed plan splits into per-subsystem injectors. The
// membership kinds become a storage.ChurnPlan (whose role events the
// protocol layer handles), slow/flaky iteration windows become a
// storage.FaultPlan with explicit open/close markers, timed windows
// become netsim.LossWindows, and the protocol-level kinds (partition
// over iterations, corrupt, late) are queried per round by
// core.ScenarioRunner.

// ChurnPlan compiles the membership events (depart/crash/rejoin).
func (p *Plan) ChurnPlan() *storage.ChurnPlan {
	if p == nil {
		return storage.NewChurnPlan(nil)
	}
	var evs []storage.ChurnEvent
	for _, ev := range p.events {
		var kind storage.ChurnKind
		switch ev.Kind {
		case Depart:
			kind = storage.ChurnDepart
		case Crash:
			kind = storage.ChurnCrash
		case Rejoin:
			kind = storage.ChurnRejoin
		default:
			continue
		}
		evs = append(evs, storage.ChurnEvent{Kind: kind, Node: ev.Node, Iter: ev.Window.FromIter})
	}
	return storage.NewChurnPlan(evs)
}

// FaultPlan compiles the iteration-window slow and flaky events into a
// transient-fault schedule: the fault is injected at the window's first
// iteration and cleared (zero delay / zero probability) at the
// iteration after its last.
func (p *Plan) FaultPlan() *storage.FaultPlan {
	if p == nil {
		return storage.NewFaultPlan(nil)
	}
	var evs []storage.FaultEvent
	for _, ev := range p.events {
		if ev.Window.Timed {
			continue
		}
		switch ev.Kind {
		case Slow:
			evs = append(evs,
				storage.FaultEvent{Kind: storage.FaultSlow, Node: ev.Node, Iter: ev.Window.FromIter, Delay: ev.Delay},
				storage.FaultEvent{Kind: storage.FaultSlow, Node: ev.Node, Iter: ev.Window.ToIter + 1})
		case Flaky:
			evs = append(evs,
				storage.FaultEvent{Kind: storage.FaultFlaky, Node: ev.Node, Iter: ev.Window.FromIter, Prob: ev.Prob},
				storage.FaultEvent{Kind: storage.FaultFlaky, Node: ev.Node, Iter: ev.Window.ToIter + 1})
		}
	}
	return storage.NewFaultPlan(evs)
}

// LossWindows compiles the timed-window events for the discrete-event
// simulator: a timed slow scales the node's links by its factor, and a
// timed partition severs (factor 0) the links of every node outside the
// mainline group.
func (p *Plan) LossWindows() []netsim.LossWindow {
	if p == nil {
		return nil
	}
	var out []netsim.LossWindow
	for _, ev := range p.events {
		if !ev.Window.Timed {
			continue
		}
		switch ev.Kind {
		case Slow:
			out = append(out, netsim.LossWindow{
				Node: ev.Node, From: ev.Window.From, To: ev.Window.To, Factor: ev.Factor,
			})
		case Partition:
			for _, g := range ev.Groups[1:] {
				for _, node := range g {
					out = append(out, netsim.LossWindow{
						Node: node, From: ev.Window.From, To: ev.Window.To,
					})
				}
			}
		}
	}
	return out
}

// PartitionWindow is one iteration-window network split: Groups[0] is
// the mainline side, every other group is isolated from it (and from
// each other) for iterations [FromIter, ToIter].
type PartitionWindow struct {
	Groups           [][]string
	FromIter, ToIter int
}

// Isolated returns the nodes cut off from the mainline: the members of
// every group but the first.
func (w PartitionWindow) Isolated() []string {
	var out []string
	for _, g := range w.Groups[1:] {
		out = append(out, g...)
	}
	return out
}

// PartitionWindows returns the iteration-window partitions, for
// core.ScenarioRunner to open (isolate) and close (heal + re-replicate)
// as rounds cross their boundaries.
func (p *Plan) PartitionWindows() []PartitionWindow {
	if p == nil {
		return nil
	}
	var out []PartitionWindow
	for _, ev := range p.events {
		if ev.Kind == Partition && !ev.Window.Timed {
			out = append(out, PartitionWindow{
				Groups: ev.Groups, FromIter: ev.Window.FromIter, ToIter: ev.Window.ToIter,
			})
		}
	}
	return out
}

// CorruptAt returns the trainers whose uploads are tampered at an
// iteration (the Byzantine injection core's BatchVerify fallback must
// catch and quarantine).
func (p *Plan) CorruptAt(iter int) map[string]bool { return p.nodesAt(Corrupt, iter) }

// LateAt returns the trainers that miss t_train at an iteration; their
// deltas arrive after the quorum cut and fold into the next round with
// age-discounted weight.
func (p *Plan) LateAt(iter int) map[string]bool { return p.nodesAt(Late, iter) }

func (p *Plan) nodesAt(kind Kind, iter int) map[string]bool {
	if p == nil {
		return nil
	}
	var out map[string]bool
	for _, ev := range p.events {
		if ev.Kind == kind && ev.Window.ContainsIter(iter) {
			if out == nil {
				out = make(map[string]bool)
			}
			out[ev.Node] = true
		}
	}
	return out
}

// MaxIter returns the highest iteration any iteration-window event
// references (plus the close marker of slow/flaky/partition windows),
// so callers can size runs to cover the whole plan. -1 if the plan has
// no iteration-window events.
func (p *Plan) MaxIter() int {
	max := -1
	if p == nil {
		return max
	}
	for _, ev := range p.events {
		if ev.Window.Timed {
			continue
		}
		last := ev.Window.ToIter
		switch ev.Kind {
		case Slow, Flaky, Partition:
			last++ // the clearing edge lands one iteration later
		}
		if last > max {
			max = last
		}
	}
	return max
}
