// Package scenario is the composable fault-scenario engine: one grammar
// subsuming the three injection surfaces that grew up separately —
// storage membership churn (storage.ChurnPlan), transient storage faults
// (storage.FaultPlan) and netsim link degradation (netsim.LossWindow) —
// plus the protocol-level faults (Byzantine uploads, late trainers,
// network partitions) that the graceful-degradation paths in core
// exercise. A plan is a comma-separated event list:
//
//	depart:ipfs-03@iter1,partition:trainer-00|ipfs-04@iter2..3,corrupt:trainer-01@iter2
//
// and compiles into per-subsystem injectors (ChurnPlan, FaultPlan,
// LossWindows, PartitionWindows, CorruptAt/LateAt) that the storage
// network, the discrete-event simulator and core.ScenarioRunner each
// consume. Parse errors are positional (ParseError carries the byte
// offset and offending token) and String renders the canonical form, so
// Parse∘String is the identity on parsed plans.
package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind names a scenario event type.
type Kind string

// Event kinds. Depart/Crash/Rejoin are the membership-churn kinds
// (compiled into a storage.ChurnPlan and role events); Slow and Flaky
// degrade individual nodes; Partition splits the network into isolated
// groups for a window; Corrupt and Late are protocol-level trainer
// faults handled by core's Byzantine and quorum paths.
const (
	Depart    Kind = "depart"
	Crash     Kind = "crash"
	Rejoin    Kind = "rejoin"
	Slow      Kind = "slow"
	Flaky     Kind = "flaky"
	Partition Kind = "partition"
	Corrupt   Kind = "corrupt"
	Late      Kind = "late"
)

// Window is when an event is in force: either an inclusive iteration
// range [FromIter, ToIter] of a multi-round run, or — for the
// virtual-time simulator — a half-open duration window [From, To).
type Window struct {
	Timed            bool
	FromIter, ToIter int           // iteration windows (Timed == false)
	From, To         time.Duration // virtual-time windows (Timed == true)
}

// ContainsIter reports whether an iteration window covers iter.
func (w Window) ContainsIter(iter int) bool {
	return !w.Timed && w.FromIter <= iter && iter <= w.ToIter
}

// String renders the window in the plan grammar: "iter3", "iter3..5" or
// "2s..6s".
func (w Window) String() string {
	if w.Timed {
		return w.From.String() + ".." + w.To.String()
	}
	if w.FromIter == w.ToIter {
		return "iter" + strconv.Itoa(w.FromIter)
	}
	return fmt.Sprintf("iter%d..%d", w.FromIter, w.ToIter)
}

func (w Window) overlaps(o Window) bool {
	if w.Timed != o.Timed {
		return false
	}
	if w.Timed {
		return w.From < o.To && o.From < w.To
	}
	return w.FromIter <= o.ToIter && o.FromIter <= w.ToIter
}

// Event is one parsed scenario event. Which fields are meaningful
// depends on Kind: Node for everything but Partition, Groups for
// Partition, Delay for iteration-window Slow, Factor for timed Slow,
// Prob for Flaky.
type Event struct {
	Kind   Kind
	Node   string
	Groups [][]string // partition groups; Groups[0] is the mainline side
	Window Window
	Delay  time.Duration // slow (iteration window): per-op storage delay
	Factor float64       // slow (timed window): bandwidth scale in [0, 1)
	Prob   float64       // flaky: per-op failure probability in [0, 1]
}

// String renders the event in the canonical plan grammar.
func (ev Event) String() string {
	switch ev.Kind {
	case Partition:
		groups := make([]string, len(ev.Groups))
		for i, g := range ev.Groups {
			groups[i] = strings.Join(g, "+")
		}
		return fmt.Sprintf("partition:%s@%s", strings.Join(groups, "|"), ev.Window)
	case Slow:
		if ev.Window.Timed {
			return fmt.Sprintf("slow:%s@%s:%s", ev.Node, ev.Window, formatFloat(ev.Factor))
		}
		return fmt.Sprintf("slow:%s@%s:%s", ev.Node, ev.Window, ev.Delay)
	case Flaky:
		return fmt.Sprintf("flaky:%s@%s:%s", ev.Node, ev.Window, formatFloat(ev.Prob))
	default:
		return fmt.Sprintf("%s:%s@%s", ev.Kind, ev.Node, ev.Window)
	}
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Plan is a parsed scenario: an ordered event list.
type Plan struct {
	events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.events) == 0 }

// Events returns a copy of the plan's events in input order.
func (p *Plan) Events() []Event {
	if p == nil {
		return nil
	}
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// String renders the canonical plan, parseable back into an equal plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	toks := make([]string, len(p.events))
	for i, ev := range p.events {
		toks[i] = ev.String()
	}
	return strings.Join(toks, ",")
}

// ParseError is a positional scenario parse error: the byte offset of
// the offending token in the input, the token itself, and what was
// wrong with it.
type ParseError struct {
	Offset int
	Token  string
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("scenario: offset %d: %q: %s", e.Offset, e.Token, e.Msg)
}

func errAt(off int, tok, format string, args ...any) error {
	return &ParseError{Offset: off, Token: tok, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a comma-separated scenario plan. Grammar per event
// (windows are "iterN", "iterN..M" inclusive, or "D1..D2" virtual-time
// durations):
//
//	depart:NODE@iterN            permanent storage departure (blocks lost)
//	crash:NODE@iterN             node/role goes down (transient)
//	rejoin:NODE@iterN            crashed/departed participant returns
//	slow:NODE@iterN..M:DUR       storage node serves ops DUR slower
//	slow:NODE@D1..D2:FACTOR      simulated links run at FACTOR capacity
//	flaky:NODE@iterN..M:P        storage ops fail with probability P
//	partition:G1|G2@iterN..M     network split; groups are +-joined names,
//	                             G1 is the mainline side (also D1..D2)
//	corrupt:TRAINER@iterN[..M]   trainer uploads tampered gradients
//	late:TRAINER@iterN[..M]      trainer misses t_train, delta folds late
//
// "recover" is accepted as an alias of rejoin, "skew" of late. An empty
// string parses to an empty plan. Errors are *ParseError values with
// the byte offset of the offending token.
func Parse(s string) (*Plan, error) {
	plan := &Plan{}
	if strings.TrimSpace(s) == "" {
		return plan, nil
	}
	off := 0
	for _, raw := range strings.Split(s, ",") {
		tok := strings.TrimSpace(raw)
		tokOff := off
		if tok != "" {
			tokOff += strings.Index(raw, tok)
		}
		ev, err := parseEvent(tok, tokOff)
		if err != nil {
			return nil, err
		}
		if err := checkAgainst(plan.events, ev, tokOff, tok); err != nil {
			return nil, err
		}
		plan.events = append(plan.events, ev)
		off += len(raw) + 1
	}
	return plan, nil
}

// checkAgainst rejects contradictory composition: two membership events
// for the same node at the same iteration, overlapping slow/flaky
// windows on one node (the close marker of one would clobber the
// other), and overlapping partition windows (only one split can be in
// force at a time).
func checkAgainst(prev []Event, ev Event, off int, tok string) error {
	for _, p := range prev {
		switch ev.Kind {
		case Depart, Crash, Rejoin:
			if (p.Kind == Depart || p.Kind == Crash || p.Kind == Rejoin) &&
				p.Node == ev.Node && p.Window.FromIter == ev.Window.FromIter {
				return errAt(off, tok, "duplicate membership event for %s@iter%d (already %s)",
					ev.Node, ev.Window.FromIter, p.Kind)
			}
		case Slow, Flaky:
			if p.Kind == ev.Kind && p.Node == ev.Node && p.Window.overlaps(ev.Window) {
				return errAt(off, tok, "%s window for %s overlaps %s", ev.Kind, ev.Node, p.Window)
			}
		case Partition:
			if p.Kind == Partition && p.Window.overlaps(ev.Window) {
				return errAt(off, tok, "partition window overlaps %s", p.Window)
			}
		case Corrupt, Late:
			if p.Kind == ev.Kind && p.Node == ev.Node && p.Window.overlaps(ev.Window) {
				return errAt(off, tok, "%s window for %s overlaps %s", ev.Kind, ev.Node, p.Window)
			}
		}
	}
	return nil
}

func parseEvent(tok string, off int) (Event, error) {
	kindStr, rest, ok := strings.Cut(tok, ":")
	if !ok || kindStr == "" {
		return Event{}, errAt(off, tok, "want KIND:...")
	}
	kind := Kind(kindStr)
	switch kind {
	case "recover":
		kind = Rejoin
	case "skew":
		kind = Late
	}

	if kind == Partition {
		groupsStr, winStr, ok := strings.Cut(rest, "@")
		if !ok {
			return Event{}, errAt(off, tok, "want partition:G1|G2@WINDOW")
		}
		win, err := parseWindow(winStr, off, tok)
		if err != nil {
			return Event{}, err
		}
		var groups [][]string
		seen := make(map[string]bool)
		for _, g := range strings.Split(groupsStr, "|") {
			var members []string
			for _, m := range strings.Split(g, "+") {
				if !validName(m) {
					return Event{}, errAt(off, tok, "bad group member %q", m)
				}
				if seen[m] {
					return Event{}, errAt(off, tok, "node %s in two partition groups", m)
				}
				seen[m] = true
				members = append(members, m)
			}
			groups = append(groups, members)
		}
		if len(groups) < 2 {
			return Event{}, errAt(off, tok, "partition needs at least two |-separated groups")
		}
		return Event{Kind: Partition, Groups: groups, Window: win}, nil
	}

	node, winArg, ok := strings.Cut(rest, "@")
	if !ok {
		return Event{}, errAt(off, tok, "want %s:NODE@WINDOW", kind)
	}
	if !validName(node) {
		return Event{}, errAt(off, tok, "bad node name %q", node)
	}
	winStr, arg, hasArg := strings.Cut(winArg, ":")
	win, err := parseWindow(winStr, off, tok)
	if err != nil {
		return Event{}, err
	}
	ev := Event{Kind: kind, Node: node, Window: win}

	switch kind {
	case Depart, Crash, Rejoin:
		if hasArg {
			return Event{}, errAt(off, tok, "%s takes no argument", kind)
		}
		if win.Timed || win.FromIter != win.ToIter {
			return Event{}, errAt(off, tok, "%s wants a single iteration (@iterN)", kind)
		}
	case Slow:
		if !hasArg {
			return Event{}, errAt(off, tok, "slow wants :DUR (iteration window) or :FACTOR (timed window)")
		}
		if win.Timed {
			f, err := strconv.ParseFloat(arg, 64)
			if err != nil || f < 0 || f >= 1 {
				return Event{}, errAt(off, tok, "timed slow wants a capacity factor in [0, 1), got %q", arg)
			}
			ev.Factor = f
		} else {
			d, err := time.ParseDuration(arg)
			if err != nil || d <= 0 {
				return Event{}, errAt(off, tok, "slow wants a positive duration, got %q", arg)
			}
			ev.Delay = d
		}
	case Flaky:
		if win.Timed {
			return Event{}, errAt(off, tok, "flaky wants an iteration window")
		}
		if !hasArg {
			return Event{}, errAt(off, tok, "flaky wants :P")
		}
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p < 0 || p > 1 {
			return Event{}, errAt(off, tok, "flaky wants a probability in [0, 1], got %q", arg)
		}
		ev.Prob = p
	case Corrupt, Late:
		if hasArg {
			return Event{}, errAt(off, tok, "%s takes no argument", kind)
		}
		if win.Timed {
			return Event{}, errAt(off, tok, "%s wants an iteration window", kind)
		}
	default:
		return Event{}, errAt(off, tok, "unknown kind %q", kindStr)
	}
	return ev, nil
}

func parseWindow(s string, off int, tok string) (Window, error) {
	if rest, ok := strings.CutPrefix(s, "iter"); ok {
		fromStr, toStr, ranged := strings.Cut(rest, "..")
		from, err := strconv.Atoi(fromStr)
		if err != nil || from < 0 {
			return Window{}, errAt(off, tok, "bad iteration %q", fromStr)
		}
		to := from
		if ranged {
			to, err = strconv.Atoi(toStr)
			if err != nil || to < from {
				return Window{}, errAt(off, tok, "bad iteration range %q", s)
			}
		}
		return Window{FromIter: from, ToIter: to}, nil
	}
	fromStr, toStr, ok := strings.Cut(s, "..")
	if !ok {
		return Window{}, errAt(off, tok, "want @iterN, @iterN..M or @D1..D2, got %q", s)
	}
	from, err := time.ParseDuration(fromStr)
	if err != nil || from < 0 {
		return Window{}, errAt(off, tok, "bad window start %q", fromStr)
	}
	to, err := time.ParseDuration(toStr)
	if err != nil || to <= from {
		return Window{}, errAt(off, tok, "bad window end %q", toStr)
	}
	return Window{Timed: true, From: from, To: to}, nil
}

// validName accepts the participant-naming alphabet (trainer-00,
// agg-p0-0, ipfs-03): letters, digits, dot, underscore and dash. The
// strict charset keeps every name representable in the grammar, so
// String∘Parse round-trips.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}
