package scenario

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ipls/internal/storage"
)

func mustParse(t *testing.T, s string) *Plan {
	t.Helper()
	p, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return p
}

func TestParseEmpty(t *testing.T) {
	for _, s := range []string{"", "   "} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !p.Empty() {
			t.Fatalf("Parse(%q) not empty", s)
		}
		if p.String() != "" {
			t.Fatalf("empty plan renders %q", p.String())
		}
	}
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.String() != "" || nilPlan.Events() != nil {
		t.Fatal("nil plan is not empty/inert")
	}
}

func TestParseEventShapes(t *testing.T) {
	cases := []struct {
		in   string
		want Event
	}{
		{"depart:ipfs-03@iter1", Event{Kind: Depart, Node: "ipfs-03", Window: Window{FromIter: 1, ToIter: 1}}},
		{"crash:trainer-00@iter0", Event{Kind: Crash, Node: "trainer-00", Window: Window{}}},
		{"rejoin:trainer-00@iter2", Event{Kind: Rejoin, Node: "trainer-00", Window: Window{FromIter: 2, ToIter: 2}}},
		{"recover:agg-p0-0@iter3", Event{Kind: Rejoin, Node: "agg-p0-0", Window: Window{FromIter: 3, ToIter: 3}}},
		{"slow:ipfs-00@iter1..2:5ms", Event{Kind: Slow, Node: "ipfs-00",
			Window: Window{FromIter: 1, ToIter: 2}, Delay: 5 * time.Millisecond}},
		{"slow:trainer-01@1s..2s:0.25", Event{Kind: Slow, Node: "trainer-01",
			Window: Window{Timed: true, From: time.Second, To: 2 * time.Second}, Factor: 0.25}},
		{"flaky:ipfs-01@iter2..4:0.5", Event{Kind: Flaky, Node: "ipfs-01",
			Window: Window{FromIter: 2, ToIter: 4}, Prob: 0.5}},
		{"corrupt:trainer-02@iter1..3", Event{Kind: Corrupt, Node: "trainer-02", Window: Window{FromIter: 1, ToIter: 3}}},
		{"late:trainer-03@iter4", Event{Kind: Late, Node: "trainer-03", Window: Window{FromIter: 4, ToIter: 4}}},
		{"skew:trainer-03@iter4", Event{Kind: Late, Node: "trainer-03", Window: Window{FromIter: 4, ToIter: 4}}},
	}
	for _, tc := range cases {
		p := mustParse(t, tc.in)
		evs := p.Events()
		if len(evs) != 1 {
			t.Fatalf("Parse(%q): %d events", tc.in, len(evs))
		}
		got := evs[0]
		if got.Kind != tc.want.Kind || got.Node != tc.want.Node || got.Window != tc.want.Window ||
			got.Delay != tc.want.Delay || got.Factor != tc.want.Factor || got.Prob != tc.want.Prob {
			t.Fatalf("Parse(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParsePartitionGroups(t *testing.T) {
	p := mustParse(t, "partition:mainline|ipfs-02+ipfs-03|trainer-05@iter2..3")
	ws := p.PartitionWindows()
	if len(ws) != 1 {
		t.Fatalf("%d partition windows", len(ws))
	}
	w := ws[0]
	if w.FromIter != 2 || w.ToIter != 3 {
		t.Fatalf("window %d..%d", w.FromIter, w.ToIter)
	}
	if len(w.Groups) != 3 || w.Groups[0][0] != "mainline" {
		t.Fatalf("groups %v", w.Groups)
	}
	iso := w.Isolated()
	if len(iso) != 3 || iso[0] != "ipfs-02" || iso[1] != "ipfs-03" || iso[2] != "trainer-05" {
		t.Fatalf("isolated %v", iso)
	}
}

// TestParsePositionalErrors pins the *ParseError contract: the byte
// offset locates the offending token in the input, and the token itself
// is carried verbatim.
func TestParsePositionalErrors(t *testing.T) {
	cases := []struct {
		in        string
		offset    int
		token     string
		msgSubstr string
	}{
		{"bogus", 0, "bogus", "want KIND:"},
		{"warp:ipfs-00@iter1", 0, "warp:ipfs-00@iter1", "unknown kind"},
		{"depart:ipfs-00@iter1,crash:bad name@iter2", 21, "crash:bad name@iter2", "bad node name"},
		{"depart:ipfs-00@iter1, depart:ipfs-00@iter1", 22, "depart:ipfs-00@iter1", "duplicate membership"},
		{"slow:ipfs-00@iter1..3:5ms,slow:ipfs-00@iter2:1ms", 26, "slow:ipfs-00@iter2:1ms", "overlaps"},
		{"partition:a|b@iter1..2,partition:c|d@iter2..3", 23, "partition:c|d@iter2..3", "overlaps"},
		{"depart:ipfs-00@iter1..2", 0, "depart:ipfs-00@iter1..2", "single iteration"},
		{"slow:ipfs-00@iter1", 0, "slow:ipfs-00@iter1", "slow wants"},
		{"slow:ipfs-00@1s..2s:1.5", 0, "slow:ipfs-00@1s..2s:1.5", "capacity factor"},
		{"flaky:ipfs-00@iter1:2", 0, "flaky:ipfs-00@iter1:2", "probability"},
		{"corrupt:t@iter1:x", 0, "corrupt:t@iter1:x", "takes no argument"},
		{"partition:solo@iter1", 0, "partition:solo@iter1", "at least two"},
		{"partition:a+b|a@iter1", 0, "partition:a+b|a@iter1", "two partition groups"},
		{"crash:ipfs-00@iter-1", 0, "crash:ipfs-00@iter-1", "bad iteration"},
		{"crash:ipfs-00@2s..1s", 0, "crash:ipfs-00@2s..1s", "bad window end"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Fatalf("Parse(%q) succeeded", tc.in)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("Parse(%q): %T is not *ParseError", tc.in, err)
		}
		if pe.Offset != tc.offset || pe.Token != tc.token {
			t.Fatalf("Parse(%q): error at offset %d token %q, want %d %q",
				tc.in, pe.Offset, pe.Token, tc.offset, tc.token)
		}
		if !strings.Contains(pe.Msg, tc.msgSubstr) {
			t.Fatalf("Parse(%q): msg %q lacks %q", tc.in, pe.Msg, tc.msgSubstr)
		}
	}
}

// TestStringRoundTrip pins Parse∘String = identity on parsed plans.
func TestStringRoundTrip(t *testing.T) {
	plans := []string{
		"depart:ipfs-03@iter1",
		"crash:trainer-01@iter1,rejoin:trainer-01@iter3",
		"slow:ipfs-00@iter1..2:5ms,flaky:ipfs-01@iter3:0.5",
		"slow:trainer-01@1s..2s:0.25",
		"partition:mainline|ipfs-02+ipfs-03@iter2..3",
		"partition:mainline|ipfs-02@400ms..1.2s",
		"corrupt:trainer-02@iter1..3,late:trainer-03@iter4",
		"depart:ipfs-03@iter1,partition:trainer-00|ipfs-04@iter2..3,corrupt:trainer-01@iter2",
	}
	for _, in := range plans {
		p := mustParse(t, in)
		canon := p.String()
		p2 := mustParse(t, canon)
		if p2.String() != canon {
			t.Fatalf("round trip diverges: %q -> %q -> %q", in, canon, p2.String())
		}
		a, b := p.Events(), p2.Events()
		if len(a) != len(b) {
			t.Fatalf("%q: event count %d != %d", in, len(a), len(b))
		}
		for i := range a {
			if a[i].Kind != b[i].Kind || a[i].Node != b[i].Node || a[i].Window != b[i].Window {
				t.Fatalf("%q: event %d %+v != %+v", in, i, a[i], b[i])
			}
		}
	}
	// Aliases canonicalize: recover -> rejoin, skew -> late.
	if got := mustParse(t, "recover:a@iter1,skew:b@iter2").String(); got != "rejoin:a@iter1,late:b@iter2" {
		t.Fatalf("alias canonicalization: %q", got)
	}
}

func TestCompileChurnPlan(t *testing.T) {
	p := mustParse(t, "depart:ipfs-03@iter1,crash:trainer-01@iter1,rejoin:trainer-01@iter3,slow:ipfs-00@iter1:1ms")
	cp := p.ChurnPlan()
	if cp.Empty() {
		t.Fatal("churn plan empty")
	}
	evs := cp.Events()
	if len(evs) != 3 {
		t.Fatalf("churn compiled %d events, want 3 (slow excluded)", len(evs))
	}
	want := []storage.ChurnEvent{
		{Kind: storage.ChurnDepart, Node: "ipfs-03", Iter: 1},
		{Kind: storage.ChurnCrash, Node: "trainer-01", Iter: 1},
		{Kind: storage.ChurnRejoin, Node: "trainer-01", Iter: 3},
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("churn event %d = %+v, want %+v", i, evs[i], want[i])
		}
	}
}

func TestCompileFaultPlanOpensAndCloses(t *testing.T) {
	p := mustParse(t, "slow:ipfs-00@iter1..2:5ms,flaky:ipfs-01@iter3:0.5,slow:trainer-01@1s..2s:0.25")
	fp := p.FaultPlan()
	if fp.Empty() {
		t.Fatal("fault plan empty")
	}
	// Each iteration-window event compiles to an open marker and a close
	// marker one past its last iteration; the timed slow is excluded.
	evs := fp.Events()
	if len(evs) != 4 {
		t.Fatalf("fault plan compiled %d events, want 4", len(evs))
	}
	if evs[0].Iter != 1 || evs[0].Delay != 5*time.Millisecond {
		t.Fatalf("open marker %+v", evs[0])
	}
	if evs[1].Iter != 3 || evs[1].Delay != 0 {
		t.Fatalf("close marker %+v", evs[1])
	}
	if evs[2].Iter != 3 || evs[2].Prob != 0.5 || evs[3].Iter != 4 || evs[3].Prob != 0 {
		t.Fatalf("flaky markers %+v %+v", evs[2], evs[3])
	}
}

func TestCompileLossWindows(t *testing.T) {
	p := mustParse(t, "slow:trainer-01@1s..2s:0.25,partition:mainline|ipfs-02+ipfs-03@400ms..1.2s,slow:ipfs-00@iter1:1ms")
	ws := p.LossWindows()
	if len(ws) != 3 {
		t.Fatalf("%d loss windows, want 3 (iteration slow excluded)", len(ws))
	}
	if ws[0].Node != "trainer-01" || ws[0].Factor != 0.25 {
		t.Fatalf("slow window %+v", ws[0])
	}
	for i, node := range []string{"ipfs-02", "ipfs-03"} {
		w := ws[1+i]
		if w.Node != node || w.Factor != 0 || w.From != 400*time.Millisecond || w.To != 1200*time.Millisecond {
			t.Fatalf("partition window %d %+v", i, w)
		}
	}
}

func TestCorruptLateAtAndMaxIter(t *testing.T) {
	p := mustParse(t, "corrupt:trainer-02@iter1..3,late:trainer-03@iter4,slow:ipfs-00@iter5:1ms")
	for iter, want := range map[int]bool{0: false, 1: true, 3: true, 4: false} {
		if got := p.CorruptAt(iter)["trainer-02"]; got != want {
			t.Fatalf("CorruptAt(%d) = %v, want %v", iter, got, want)
		}
	}
	if !p.LateAt(4)["trainer-03"] || p.LateAt(3) != nil {
		t.Fatal("LateAt windows wrong")
	}
	// slow's clearing edge lands at iter6.
	if got := p.MaxIter(); got != 6 {
		t.Fatalf("MaxIter = %d, want 6", got)
	}
	var nilPlan *Plan
	if nilPlan.MaxIter() != -1 || nilPlan.CorruptAt(0) != nil {
		t.Fatal("nil plan queries not inert")
	}
}

// FuzzParseScenario holds the parser's core property under arbitrary
// input: Parse never panics, and on success String() re-parses to the
// same canonical form (Parse∘String is a fixpoint).
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		"",
		"depart:ipfs-03@iter1",
		"crash:trainer-01@iter1,rejoin:trainer-01@iter3",
		"slow:ipfs-00@iter1..2:5ms,flaky:ipfs-01@iter3:0.5",
		"slow:trainer-01@1s..2s:0.25",
		"partition:mainline|ipfs-02+ipfs-03@iter2..3",
		"corrupt:trainer-02@iter1..3,late:trainer-03@iter4",
		"recover:a@iter1,skew:b@iter2",
		"partition:a|b@400ms..1.2s",
		"slow:x@iter1:bogus",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		p, err := Parse(in)
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("Parse(%q): %T is not *ParseError", in, err)
			}
			if pe.Offset < 0 || pe.Offset > len(in) {
				t.Fatalf("Parse(%q): offset %d out of range", in, pe.Offset)
			}
			return
		}
		canon := p.String()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not re-parse: %v", canon, in, err)
		}
		if again := p2.String(); again != canon {
			t.Fatalf("String not a fixpoint: %q -> %q -> %q", in, canon, again)
		}
	})
}
