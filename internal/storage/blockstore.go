package storage

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ipls/internal/cid"
)

// BlockStore is the node-local storage backend: one node's content-addressed
// datastore, behind which the network's replication, placement and repair
// machinery is backend-agnostic. It is the seam where the in-memory map the
// package grew up with and the durable on-disk CAS store meet — the role the
// datastore abstraction plays under an IPFS node.
//
// Methods are context-first like the storage.Client redesign: cancellation
// and deadlines flow from the caller into the backend (the disk backend
// checks them before touching the filesystem). Implementations must be safe
// for concurrent use.
type BlockStore interface {
	// Put stores data and returns its content ID. Storing bytes that are
	// already present is a cheap no-op (content addressing deduplicates).
	Put(ctx context.Context, data []byte) (cid.CID, error)
	// Get returns the block's bytes. A missing block is ErrNotFound;
	// backends that re-verify on read report tampered bytes as
	// ErrIntegrity.
	Get(ctx context.Context, c cid.CID) ([]byte, error)
	// Has reports whether the store holds the block, without reading it.
	Has(ctx context.Context, c cid.CID) (bool, error)
	// Delete removes a block. Deleting an absent block is a no-op,
	// mirroring IPFS unpinning semantics.
	Delete(ctx context.Context, c cid.CID) error
	// Keys lists every stored CID in sorted order.
	Keys(ctx context.Context) ([]cid.CID, error)
	// Close releases backend resources. The store must not be used after.
	Close() error
}

// Backend errors.
var (
	// ErrIntegrity indicates a stored block no longer hashes to its CID:
	// the backend's bytes rotted or were tampered with at rest. Reported
	// by backends that re-verify on read (the disk store).
	ErrIntegrity = errors.New("storage: block failed integrity re-hash")
	// ErrBackend indicates a node's block-store backend failed
	// infrastructurally (unwritable directory, I/O error, corrupt block on
	// disk). Health wraps backend failures in it so readiness probes can
	// distinguish "disk is broken" from "not enough replicas live".
	ErrBackend = errors.New("storage: block store backend failure")
	// ErrStoreClosed indicates an operation on a closed block store.
	ErrStoreClosed = errors.New("storage: block store is closed")
)

// Sizer is the optional BlockStore capability of reporting its stored byte
// total cheaply (without reading every block).
type Sizer interface {
	StoredBytes() int64
}

// Corrupter is the optional BlockStore capability of flipping a byte of a
// stored block in place — the test hook behind the paper's "we do not assume
// correctness of retrieved data" adversary (§III-A).
type Corrupter interface {
	Corrupt(ctx context.Context, c cid.CID) error
}

// MemStore is the in-memory BlockStore: the mutex-guarded map the network's
// nodes always used, extracted behind the backend interface. It does not
// re-verify on read — corrupted bytes are served as-is, preserving the
// adversarial model in which readers verify CIDs themselves.
type MemStore struct {
	mu     sync.Mutex
	blocks map[cid.CID][]byte
	bytes  int64
	closed bool
}

var (
	_ BlockStore = (*MemStore)(nil)
	_ Sizer      = (*MemStore)(nil)
	_ Corrupter  = (*MemStore)(nil)
)

// NewMemStore creates an empty in-memory block store.
func NewMemStore() *MemStore {
	return &MemStore{blocks: make(map[cid.CID][]byte)}
}

// Put stores data under its CID. The slice is retained (callers that mutate
// their buffer afterwards must copy first); Get returns copies, so stored
// bytes cannot be mutated through reads.
func (m *MemStore) Put(ctx context.Context, data []byte) (cid.CID, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	c := cid.Sum(data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrStoreClosed
	}
	if _, ok := m.blocks[c]; !ok {
		m.blocks[c] = data
		m.bytes += int64(len(data))
	}
	return c, nil
}

// Get returns a copy of the block's bytes.
func (m *MemStore) Get(ctx context.Context, c cid.CID) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrStoreClosed
	}
	data, ok := m.blocks[c]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, c.Short())
	}
	return append([]byte(nil), data...), nil
}

// Has reports whether the block is present.
func (m *MemStore) Has(ctx context.Context, c cid.CID) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, ErrStoreClosed
	}
	_, ok := m.blocks[c]
	return ok, nil
}

// Delete removes a block (no-op when absent).
func (m *MemStore) Delete(ctx context.Context, c cid.CID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	if data, ok := m.blocks[c]; ok {
		m.bytes -= int64(len(data))
		delete(m.blocks, c)
	}
	return nil
}

// Keys lists stored CIDs in sorted order.
func (m *MemStore) Keys(ctx context.Context) ([]cid.CID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrStoreClosed
	}
	out := make([]cid.CID, 0, len(m.blocks))
	for c := range m.blocks {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Len returns how many blocks the store holds.
func (m *MemStore) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blocks)
}

// StoredBytes returns the total payload bytes held.
func (m *MemStore) StoredBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Corrupt flips a byte of the stored block — the §III-A adversary hook.
// The mutation is copy-on-write, so replicas sharing the slice are not
// affected.
func (m *MemStore) Corrupt(ctx context.Context, c cid.CID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrStoreClosed
	}
	data, ok := m.blocks[c]
	if !ok {
		return ErrNotFound
	}
	mutated := append([]byte(nil), data...)
	mutated[len(mutated)/2] ^= 0xff
	m.blocks[c] = mutated
	return nil
}

// Close marks the store closed; subsequent operations fail.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.blocks = nil
	m.bytes = 0
	return nil
}

// storeBytes returns a store's byte total: the Sizer fast path when the
// backend has one, a Keys+Get walk otherwise.
func storeBytes(bs BlockStore) int64 {
	if s, ok := bs.(Sizer); ok {
		return s.StoredBytes()
	}
	keys, err := bs.Keys(context.Background())
	if err != nil {
		return 0
	}
	var total int64
	for _, c := range keys {
		if data, err := bs.Get(context.Background(), c); err == nil {
			total += int64(len(data))
		}
	}
	return total
}
