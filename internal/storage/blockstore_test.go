package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/obs"
)

// runStoreContract exercises the BlockStore contract shared by every
// backend: round trips, dedup, Has/Keys/Delete semantics, context
// cancellation, and closed-store behavior.
func runStoreContract(t *testing.T, open func(t *testing.T) BlockStore) {
	t.Helper()
	ctx := context.Background()

	t.Run("RoundTrip", func(t *testing.T) {
		s := open(t)
		data := []byte("block payload")
		c, err := s.Put(ctx, data)
		if err != nil {
			t.Fatal(err)
		}
		if !cid.Verify(data, c) {
			t.Fatal("Put returned a CID that does not match the data")
		}
		got, err := s.Get(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(data) {
			t.Fatal("Get returned different bytes")
		}
		if ok, err := s.Has(ctx, c); err != nil || !ok {
			t.Fatalf("Has = %v, %v; want true", ok, err)
		}
	})

	t.Run("GetMissing", func(t *testing.T) {
		s := open(t)
		if _, err := s.Get(ctx, cid.Sum([]byte("absent"))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
		if ok, err := s.Has(ctx, cid.Sum([]byte("absent"))); err != nil || ok {
			t.Fatalf("Has on absent = %v, %v; want false", ok, err)
		}
	})

	t.Run("PutDedups", func(t *testing.T) {
		s := open(t)
		data := []byte("same bytes twice")
		c1, err := s.Put(ctx, data)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := s.Put(ctx, append([]byte(nil), data...))
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatal("same content produced different CIDs")
		}
		keys, err := s.Keys(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 1 {
			t.Fatalf("want 1 key after duplicate put, got %d", len(keys))
		}
	})

	t.Run("DeleteAndKeys", func(t *testing.T) {
		s := open(t)
		var want []cid.CID
		for i := 0; i < 5; i++ {
			c, err := s.Put(ctx, []byte(fmt.Sprintf("block-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, c)
		}
		keys, err := s.Keys(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 5 {
			t.Fatalf("want 5 keys, got %d", len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1] >= keys[i] {
				t.Fatal("Keys not sorted")
			}
		}
		if err := s.Delete(ctx, want[0]); err != nil {
			t.Fatal(err)
		}
		if err := s.Delete(ctx, want[0]); err != nil {
			t.Fatalf("deleting absent block should be a no-op, got %v", err)
		}
		if ok, _ := s.Has(ctx, want[0]); ok {
			t.Fatal("deleted block still present")
		}
		keys, _ = s.Keys(ctx)
		if len(keys) != 4 {
			t.Fatalf("want 4 keys after delete, got %d", len(keys))
		}
	})

	t.Run("ContextCancelled", func(t *testing.T) {
		s := open(t)
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := s.Put(cancelled, []byte("x")); !errors.Is(err, context.Canceled) {
			t.Fatalf("Put with cancelled ctx: got %v", err)
		}
		if _, err := s.Get(cancelled, cid.Sum([]byte("x"))); !errors.Is(err, context.Canceled) {
			t.Fatalf("Get with cancelled ctx: got %v", err)
		}
	})

	t.Run("Closed", func(t *testing.T) {
		s := open(t)
		c, err := s.Put(ctx, []byte("pre-close"))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(ctx, c); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("Get after Close: got %v", err)
		}
		if _, err := s.Put(ctx, []byte("post-close")); !errors.Is(err, ErrStoreClosed) {
			t.Fatalf("Put after Close: got %v", err)
		}
	})

	t.Run("SizerAndCorrupter", func(t *testing.T) {
		s := open(t)
		data := []byte("sized and corruptible")
		c, err := s.Put(ctx, append([]byte(nil), data...))
		if err != nil {
			t.Fatal(err)
		}
		if sz, ok := s.(Sizer); !ok {
			t.Fatal("backend should implement Sizer")
		} else if got := sz.StoredBytes(); got != int64(len(data)) {
			t.Fatalf("StoredBytes = %d, want %d", got, len(data))
		}
		corr, ok := s.(Corrupter)
		if !ok {
			t.Fatal("backend should implement Corrupter")
		}
		if err := corr.Corrupt(ctx, c); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(ctx, c)
		if err == nil {
			if cid.Verify(got, c) {
				t.Fatal("corrupted block still verifies")
			}
		} else if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("corrupted Get: got %v, want bytes or ErrIntegrity", err)
		}
	})
}

func TestMemStoreContract(t *testing.T) {
	runStoreContract(t, func(t *testing.T) BlockStore { return NewMemStore() })
}

func TestFSStoreContract(t *testing.T) {
	runStoreContract(t, func(t *testing.T) BlockStore {
		s, err := OpenFSStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
}

func TestCachedFSStoreContract(t *testing.T) {
	runStoreContract(t, func(t *testing.T) BlockStore {
		s, err := OpenFSStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		return NewCachedStore(s, 3)
	})
}

func TestFSStoreReopenServesBlocks(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cids []cid.CID
	for i := 0; i < 10; i++ {
		c, err := s.Put(ctx, []byte(fmt.Sprintf("durable block %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		cids = append(cids, c)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen the same directory: the index is rebuilt by scanning the
	// fanout layout and every block round-trips with its hash intact.
	s2, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	keys, err := s2.Keys(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(cids) {
		t.Fatalf("reopened store has %d keys, want %d", len(keys), len(cids))
	}
	for _, c := range cids {
		data, err := s2.Get(ctx, c)
		if err != nil {
			t.Fatalf("reopened Get(%s): %v", c.Short(), err)
		}
		if !cid.Verify(data, c) {
			t.Fatalf("reopened block %s fails verification", c.Short())
		}
	}
}

func TestFSStoreCorruptOnDiskSurfacesErrIntegrity(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := s.Put(ctx, []byte("bytes that will rot"))
	if err != nil {
		t.Fatal(err)
	}
	// Rot the file behind the store's back, as a failing disk would.
	p := filepath.Join(dir, string(c)[:2], string(c))
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, c); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("want ErrIntegrity from rotted block, got %v", err)
	}
}

func TestFSStoreAtomicPutCleansStaging(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	// A leftover staging file from a crashed writer is cleared on Open.
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "put-crashed")
	if err := os.WriteFile(stale, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale staging file survived Open")
	}
	if _, err := s.Put(ctx, []byte("fresh block")); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("staging dir not empty after Put: %d files", len(left))
	}
}

func TestCachedStoreHitMissMetricsAndEviction(t *testing.T) {
	ctx := context.Background()
	fs, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedStore(fs, 2)
	defer cs.Close()
	reg := obs.NewRegistry()
	hits := reg.Counter("storage_cache_hits_total")
	misses := reg.Counter("storage_cache_misses_total")
	cs.SetMetrics(hits, misses)

	c1, _ := cs.Put(ctx, []byte("one"))
	c2, _ := cs.Put(ctx, []byte("two"))
	// Both admitted by write-through: hits.
	if _, err := cs.Get(ctx, c1); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(ctx, c2); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 2 || misses.Value() != 0 {
		t.Fatalf("after warm gets: hits=%d misses=%d", hits.Value(), misses.Value())
	}
	// Third block evicts the LRU entry (c1).
	c3, _ := cs.Put(ctx, []byte("three"))
	if cs.CacheLen() != 2 {
		t.Fatalf("cache len = %d, want 2", cs.CacheLen())
	}
	if _, err := cs.Get(ctx, c1); err != nil {
		t.Fatal(err)
	}
	if misses.Value() != 1 {
		t.Fatalf("evicted block should miss: misses=%d", misses.Value())
	}
	// The miss readmitted c1, evicting c2 (LRU among {c3, c1}? — order is
	// c3 then c1 most-recent; c3 was least recently used... verify via a
	// hit on c1).
	if _, err := cs.Get(ctx, c1); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 3 {
		t.Fatalf("readmitted block should hit: hits=%d", hits.Value())
	}
	_ = c3
}

func TestCachedStoreCorruptEvicts(t *testing.T) {
	ctx := context.Background()
	fs, err := OpenFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCachedStore(fs, 4)
	defer cs.Close()
	c, err := cs.Put(ctx, []byte("cached then rotted"))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then corrupt on disk: the cache must not keep
	// serving the clean copy and mask the rot.
	if _, err := cs.Get(ctx, c); err != nil {
		t.Fatal(err)
	}
	if err := cs.Corrupt(ctx, c); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Get(ctx, c); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("want ErrIntegrity after corrupt, got %v (cache masked the rot?)", err)
	}
}

func TestNetworkGC(t *testing.T) {
	ctx := context.Background()
	n, _ := newTestNetwork(t, 3, 2)
	keepData := []byte("current iteration block")
	dropData := []byte("superseded iteration block")
	keepCID, err := n.Put(ctx, "node-00", keepData)
	if err != nil {
		t.Fatal(err)
	}
	dropCID, err := n.Put(ctx, "node-01", dropData)
	if err != nil {
		t.Fatal(err)
	}
	report, err := n.GC(ctx, map[cid.CID]bool{keepCID: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.Kept != 1 || report.Collected != 1 {
		t.Fatalf("GC report: %+v", report)
	}
	if report.BytesFreed < int64(len(dropData)) {
		t.Fatalf("BytesFreed = %d, want >= %d (replicas)", report.BytesFreed, len(dropData))
	}
	if _, err := n.Fetch(ctx, dropCID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("collected block still fetchable: %v", err)
	}
	if got, err := n.Fetch(ctx, keepCID); err != nil || string(got) != string(keepData) {
		t.Fatalf("kept block lost: %v", err)
	}
	if len(n.Providers(dropCID)) != 0 {
		t.Fatal("collected block still has provider records")
	}
	if got := n.Metrics().Counter("storage_gc_blocks_total").Value(); got != 1 {
		t.Fatalf("storage_gc_blocks_total = %d, want 1", got)
	}
}

func TestHealthReportsBackendErrorDistinctly(t *testing.T) {
	if testBackend() != BackendFS {
		t.Skip("backend-error readiness is a disk-backend behavior")
	}
	ctx := context.Background()
	n, _ := newTestNetwork(t, 2, 1)
	c, err := n.Put(ctx, "node-00", []byte("will rot on disk"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Health(); err != nil {
		t.Fatalf("healthy network: %v", err)
	}
	if err := n.Corrupt("node-00", c); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(ctx, "node-00", c); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("want ErrIntegrity, got %v", err)
	}
	herr := n.Health()
	if !errors.Is(herr, ErrBackend) {
		t.Fatalf("Health should report the backend failure via ErrBackend, got %v", herr)
	}
	// Distinct from replication failures: all nodes are live.
	if errors.Is(herr, ErrNodeDown) {
		t.Fatal("backend failure misreported as node-down")
	}
}

func TestNetworkRestartServesBlocksWithoutReReplication(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := StoreConfig{Backend: BackendFS, Dir: dir, CacheBlocks: 4}
	n1 := NewNetworkWithStore(nil, 1, cfg)
	n1.AddNode("node-00")
	var cids []cid.CID
	for i := 0; i < 6; i++ {
		c, err := n1.Put(ctx, "node-00", []byte(fmt.Sprintf("pre-restart %d", i)))
		if err != nil {
			t.Fatal(err)
		}
		cids = append(cids, c)
	}
	if err := n1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh network over the same directory. AddNode reopens
	// the store and re-announces its blocks, so provider records are
	// restored without any re-replication traffic.
	n2 := NewNetworkWithStore(nil, 1, cfg)
	n2.AddNode("node-00")
	defer n2.Close()
	for _, c := range cids {
		data, err := n2.Get(ctx, "node-00", c)
		if err != nil {
			t.Fatalf("post-restart Get(%s): %v", c.Short(), err)
		}
		if !cid.Verify(data, c) {
			t.Fatalf("post-restart block %s fails verification", c.Short())
		}
		provs := n2.Providers(c)
		if len(provs) != 1 || provs[0] != "node-00" {
			t.Fatalf("provider records not restored for %s: %v", c.Short(), provs)
		}
	}
	if got := n2.Metrics().Counter("repair_blocks_total").Value(); got != 0 {
		t.Fatalf("restart triggered re-replication: repair_blocks_total=%d", got)
	}
}

func TestAddNodeUnwritableDirFallsBackAndReportsBackend(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "blocked")
	// A plain file where the store root should be makes MkdirAll fail.
	if err := os.WriteFile(blocked, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	n := NewNetworkWithStore(nil, 1, StoreConfig{Backend: BackendFS, Dir: blocked})
	defer n.Close()
	nd := n.AddNode("node-00")
	if err := n.Health(); !errors.Is(err, ErrBackend) {
		t.Fatalf("Health should carry the open failure as ErrBackend, got %v", err)
	}
	// The node still works (memory fallback), so the network degrades
	// rather than panics.
	if _, err := n.Put(context.Background(), "node-00", []byte("still works")); err != nil {
		t.Fatal(err)
	}
	if nd.Store() == nil {
		t.Fatal("fallback store missing")
	}
}
