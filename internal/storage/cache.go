package storage

import (
	"container/list"
	"context"
	"sync"

	"ipls/internal/cid"
	"ipls/internal/obs"
)

// CachedStore layers a fixed-capacity LRU block cache over a backing
// BlockStore. It exists for the disk backend: a Get that hits the cache
// skips the read-and-rehash round trip entirely. Writes populate the cache
// (write-through), deletes and corruption hooks invalidate it, so the cache
// can never serve bytes the backing store has dropped or that tests have
// deliberately rotted on disk.
//
// Hit/miss counters are nil-safe obs instruments; SetMetrics wires them to
// storage_cache_hits_total / storage_cache_misses_total.
type CachedStore struct {
	backing BlockStore
	cap     int

	mu      sync.Mutex
	entries map[cid.CID]*list.Element
	lru     *list.List // front = most recently used

	hits   *obs.Counter
	misses *obs.Counter
}

type cacheEntry struct {
	c    cid.CID
	data []byte
}

var _ BlockStore = (*CachedStore)(nil)

// NewCachedStore wraps backing with an LRU cache holding up to capBlocks
// blocks. A capacity of zero or less disables caching (every Get is a
// miss against the backing store).
func NewCachedStore(backing BlockStore, capBlocks int) *CachedStore {
	return &CachedStore{
		backing: backing,
		cap:     capBlocks,
		entries: make(map[cid.CID]*list.Element),
		lru:     list.New(),
	}
}

// SetMetrics attaches hit/miss counters. Nil counters discard.
func (cs *CachedStore) SetMetrics(hits, misses *obs.Counter) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.hits = hits
	cs.misses = misses
}

// Backing returns the wrapped store (the cache is transparent to callers
// that need backend-specific capabilities, e.g. FSStore.Dir).
func (cs *CachedStore) Backing() BlockStore { return cs.backing }

func (cs *CachedStore) admit(c cid.CID, data []byte) {
	if cs.cap <= 0 {
		return
	}
	if el, ok := cs.entries[c]; ok {
		cs.lru.MoveToFront(el)
		return
	}
	cs.entries[c] = cs.lru.PushFront(&cacheEntry{c: c, data: data})
	for cs.lru.Len() > cs.cap {
		oldest := cs.lru.Back()
		cs.lru.Remove(oldest)
		delete(cs.entries, oldest.Value.(*cacheEntry).c)
	}
}

func (cs *CachedStore) evict(c cid.CID) {
	if el, ok := cs.entries[c]; ok {
		cs.lru.Remove(el)
		delete(cs.entries, c)
	}
}

// Put writes through to the backing store and admits the block.
func (cs *CachedStore) Put(ctx context.Context, data []byte) (cid.CID, error) {
	c, err := cs.backing.Put(ctx, data)
	if err != nil {
		return c, err
	}
	cs.mu.Lock()
	cs.admit(c, data)
	cs.mu.Unlock()
	return c, nil
}

// Get serves from the cache when possible, falling back to the backing
// store and admitting what it returns. Cached bytes were verified when
// first read (or written by us), so cache hits skip re-hashing.
func (cs *CachedStore) Get(ctx context.Context, c cid.CID) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	if el, ok := cs.entries[c]; ok {
		cs.lru.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		hits := cs.hits
		cs.mu.Unlock()
		hits.Inc()
		return append([]byte(nil), data...), nil
	}
	misses := cs.misses
	cs.mu.Unlock()
	misses.Inc()
	data, err := cs.backing.Get(ctx, c)
	if err != nil {
		return nil, err
	}
	cs.mu.Lock()
	cs.admit(c, data)
	cs.mu.Unlock()
	return data, nil
}

// Has defers to the backing store (presence, not cachedness).
func (cs *CachedStore) Has(ctx context.Context, c cid.CID) (bool, error) {
	return cs.backing.Has(ctx, c)
}

// Delete removes from the backing store and invalidates the cache entry.
func (cs *CachedStore) Delete(ctx context.Context, c cid.CID) error {
	if err := cs.backing.Delete(ctx, c); err != nil {
		return err
	}
	cs.mu.Lock()
	cs.evict(c)
	cs.mu.Unlock()
	return nil
}

// Keys defers to the backing store.
func (cs *CachedStore) Keys(ctx context.Context) ([]cid.CID, error) {
	return cs.backing.Keys(ctx)
}

// StoredBytes reports the backing store's total (the cache holds copies,
// not extra payload).
func (cs *CachedStore) StoredBytes() int64 { return storeBytes(cs.backing) }

// Corrupt forwards to the backing store's corruption hook and evicts any
// cached copy — otherwise the cache would keep serving the clean bytes and
// mask the on-disk rot the test injected.
func (cs *CachedStore) Corrupt(ctx context.Context, c cid.CID) error {
	corrupter, ok := cs.backing.(Corrupter)
	if !ok {
		return ErrNotFound
	}
	if err := corrupter.Corrupt(ctx, c); err != nil {
		return err
	}
	cs.mu.Lock()
	cs.evict(c)
	cs.mu.Unlock()
	return nil
}

// CacheLen returns how many blocks the cache currently holds.
func (cs *CachedStore) CacheLen() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.lru.Len()
}

// Close drops the cache and closes the backing store.
func (cs *CachedStore) Close() error {
	cs.mu.Lock()
	cs.entries = make(map[cid.CID]*list.Element)
	cs.lru.Init()
	cs.mu.Unlock()
	return cs.backing.Close()
}

var (
	_ Sizer     = (*CachedStore)(nil)
	_ Corrupter = (*CachedStore)(nil)
)
