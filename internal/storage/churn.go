package storage

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Churn schedules. Where a FaultPlan injects transient storage faults
// (crash/recover/slow/flaky), a ChurnPlan scripts *membership* change
// across a multi-iteration run: permanent storage-node departures, role
// crashes (aggregators, trainers), and rejoins. The grammar is the
// FaultPlan's: comma-separated KIND:NAME@iterN events, e.g.
//
//	depart:ipfs-03@iter2,crash:agg-p0-0@iter1,rejoin:trainer-05@iter3
//
// Names are resolved at apply time: events naming nodes of the attached
// storage network are applied there (depart, crash→Fail, rejoin→
// Rejoin/Recover); the rest name protocol roles and are returned to the
// caller — core.ChurnRunner turns them into aggregator failovers and
// trainer rejoin bootstraps.

// ChurnKind names a scheduled membership action.
type ChurnKind string

// Churn actions a plan can schedule.
const (
	// ChurnDepart permanently removes a storage node (blocks lost).
	ChurnDepart ChurnKind = "depart"
	// ChurnCrash takes a node or role offline: a storage node goes down
	// (transient), an aggregator misses its deadline, a trainer stops
	// publishing gradients.
	ChurnCrash ChurnKind = "crash"
	// ChurnRejoin brings a crashed or departed participant back: a
	// departed storage node rejoins empty, a crashed one recovers with its
	// datastore, a trainer bootstraps from the latest checkpoint.
	ChurnRejoin ChurnKind = "rejoin"
)

// ChurnEvent is one scheduled membership change: apply Kind to Node at
// iteration Iter.
type ChurnEvent struct {
	Kind ChurnKind
	Node string
	Iter int
}

// String renders the event in the plan grammar.
func (ev ChurnEvent) String() string {
	return fmt.Sprintf("%s:%s@iter%d", ev.Kind, ev.Node, ev.Iter)
}

// ChurnPlan is an iteration-indexed membership-change schedule.
type ChurnPlan struct {
	events []ChurnEvent
}

// ParseError is a positional plan parse error: the byte offset of the
// offending token within the plan string, the token itself, and what
// was wrong with it.
type ParseError struct {
	Offset int
	Token  string
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("storage: plan offset %d: %q: %s", e.Offset, e.Token, e.Msg)
}

// ParseChurnPlan parses a comma-separated churn scenario, e.g.
//
//	depart:ipfs-03@iter2,crash:agg-p0-0@iter1,rejoin:trainer-05@iter3
//
// Grammar per event: KIND:NAME@iterN where KIND is depart, crash or
// rejoin. Two events for the same NAME@iterN are contradictory and
// rejected. An empty string parses to an empty plan. Errors are
// *ParseError values carrying the offending token and its byte offset.
func ParseChurnPlan(s string) (*ChurnPlan, error) {
	plan := &ChurnPlan{}
	if strings.TrimSpace(s) == "" {
		return plan, nil
	}
	seen := make(map[ChurnEvent]ChurnKind) // (node, iter) key; Kind zeroed
	off := 0
	for _, raw := range strings.Split(s, ",") {
		tok := strings.TrimSpace(raw)
		tokOff := off
		if tok != "" {
			tokOff += strings.Index(raw, tok)
		}
		ev, err := parseChurnEvent(tok, tokOff)
		if err != nil {
			return nil, err
		}
		key := ChurnEvent{Node: ev.Node, Iter: ev.Iter}
		if prev, dup := seen[key]; dup {
			return nil, &ParseError{Offset: tokOff, Token: tok,
				Msg: fmt.Sprintf("duplicate event for %s@iter%d (already %s)", ev.Node, ev.Iter, prev)}
		}
		seen[key] = ev.Kind
		plan.events = append(plan.events, ev)
		off += len(raw) + 1
	}
	sort.SliceStable(plan.events, func(i, j int) bool { return plan.events[i].Iter < plan.events[j].Iter })
	return plan, nil
}

func parseChurnEvent(s string, off int) (ChurnEvent, error) {
	errAt := func(format string, args ...any) (ChurnEvent, error) {
		return ChurnEvent{}, &ParseError{Offset: off, Token: s, Msg: fmt.Sprintf(format, args...)}
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return errAt("want KIND:NAME@iterN")
	}
	kind := ChurnKind(parts[0])
	switch kind {
	case ChurnDepart, ChurnCrash, ChurnRejoin:
	default:
		return errAt("unknown kind %q", kind)
	}
	at := strings.Split(parts[1], "@")
	if len(at) != 2 || at[0] == "" || !strings.HasPrefix(at[1], "iter") {
		return errAt("want NAME@iterN after kind")
	}
	iter, err := strconv.Atoi(strings.TrimPrefix(at[1], "iter"))
	if err != nil || iter < 0 {
		return errAt("bad iteration %q", at[1])
	}
	return ChurnEvent{Kind: kind, Node: at[0], Iter: iter}, nil
}

// NewChurnPlan builds a plan directly from events (the scenario
// compiler's entry point), ordered by iteration like ParseChurnPlan.
func NewChurnPlan(events []ChurnEvent) *ChurnPlan {
	plan := &ChurnPlan{events: append([]ChurnEvent(nil), events...)}
	sort.SliceStable(plan.events, func(i, j int) bool { return plan.events[i].Iter < plan.events[j].Iter })
	return plan
}

// Empty reports whether the plan schedules nothing.
func (p *ChurnPlan) Empty() bool { return p == nil || len(p.events) == 0 }

// Events returns the plan's schedule, ordered by iteration.
func (p *ChurnPlan) Events() []ChurnEvent {
	if p == nil {
		return nil
	}
	out := make([]ChurnEvent, len(p.events))
	copy(out, p.events)
	return out
}

// EventsAt returns the events scheduled for one iteration.
func (p *ChurnPlan) EventsAt(iter int) []ChurnEvent {
	if p == nil {
		return nil
	}
	var out []ChurnEvent
	for _, ev := range p.events {
		if ev.Iter == iter {
			out = append(out, ev)
		}
	}
	return out
}

// ApplyStorage applies the iteration's events that name nodes of the
// attached storage network — depart→Depart, crash→Fail, rejoin→Rejoin
// (or Recover, when the node only crashed) — returning human-readable
// descriptions of what it did plus the events naming unknown (role)
// participants, which the protocol layer must act on. A nil network
// passes every event through.
func (p *ChurnPlan) ApplyStorage(n *Network, iter int) (applied []string, rest []ChurnEvent, err error) {
	if p == nil {
		return nil, nil, nil
	}
	for _, ev := range p.events {
		if ev.Iter != iter {
			continue
		}
		if n == nil || !n.hasNode(ev.Node) {
			rest = append(rest, ev)
			continue
		}
		switch ev.Kind {
		case ChurnDepart:
			err = n.Depart(ev.Node)
			applied = append(applied, fmt.Sprintf("depart %s (blocks lost)", ev.Node))
		case ChurnCrash:
			err = n.Fail(ev.Node)
			applied = append(applied, fmt.Sprintf("crash %s", ev.Node))
		case ChurnRejoin:
			if n.hasDeparted(ev.Node) {
				err = n.Rejoin(ev.Node)
				applied = append(applied, fmt.Sprintf("rejoin %s (empty datastore)", ev.Node))
			} else {
				err = n.Recover(ev.Node)
				applied = append(applied, fmt.Sprintf("rejoin %s (datastore intact)", ev.Node))
			}
		}
		if err != nil {
			return applied, rest, fmt.Errorf("storage: apply churn at iter %d: %w", iter, err)
		}
	}
	return applied, rest, nil
}

// hasNode reports whether id is a storage node of this network.
func (n *Network) hasNode(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.nodes[id]
	return ok
}

// hasDeparted reports whether id is a departed storage node.
func (n *Network) hasDeparted(id string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	return ok && nd.departed
}
