package storage

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/obs"
	"ipls/internal/scalar"
)

func cidOf(b []byte) cid.CID { return cid.Sum(b) }

func churnNet(t *testing.T, replicas, nodes int) *Network {
	t.Helper()
	n := NewNetwork(scalar.NewField(big.NewInt(7919)), replicas)
	n.SetPlacement(PlacementRendezvous)
	for i := 0; i < nodes; i++ {
		n.AddNode(fmt.Sprintf("ipfs-%02d", i))
	}
	return n
}

func TestParseChurnPlan(t *testing.T) {
	plan, err := ParseChurnPlan("depart:ipfs-03@iter2,crash:agg-p0-0@iter1,rejoin:trainer-05@iter3")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	evs := plan.Events()
	if len(evs) != 3 {
		t.Fatalf("want 3 events, got %d", len(evs))
	}
	// Sorted by iteration.
	if evs[0].Kind != ChurnCrash || evs[0].Node != "agg-p0-0" || evs[0].Iter != 1 {
		t.Fatalf("unexpected first event %+v", evs[0])
	}
	if evs[2].String() != "rejoin:trainer-05@iter3" {
		t.Fatalf("String() = %q", evs[2].String())
	}
	if got := plan.EventsAt(2); len(got) != 1 || got[0].Kind != ChurnDepart {
		t.Fatalf("EventsAt(2) = %+v", got)
	}
	empty, err := ParseChurnPlan("  ")
	if err != nil || !empty.Empty() {
		t.Fatalf("blank plan: %v empty=%v", err, empty.Empty())
	}
	for _, bad := range []string{
		"depart:ipfs-03",          // no iteration
		"melt:ipfs-03@iter1",      // unknown kind
		"depart:@iter1",           // empty name
		"depart:ipfs-03@round1",   // bad iteration marker
		"depart:ipfs-03@iter-1",   // negative iteration
		"slow:ipfs-03@iter1:50ms", // fault kinds are not churn kinds
	} {
		if _, err := ParseChurnPlan(bad); err == nil {
			t.Errorf("ParseChurnPlan(%q): want error", bad)
		}
	}
}

func TestDepartLosesBlocksAndWithdrawsRecords(t *testing.T) {
	n := churnNet(t, 2, 4)
	ctx := context.Background()
	c, err := n.Put(ctx, "ipfs-00", []byte("churn-block"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	if got := n.ReplicaCount(c); got != 2 {
		t.Fatalf("replicas after put = %d, want 2", got)
	}
	providers := n.Providers(c)
	if len(providers) != 2 {
		t.Fatalf("providers = %v, want 2 entries", providers)
	}
	for _, id := range providers {
		if err := n.Depart(id); err != nil {
			t.Fatalf("depart %s: %v", id, err)
		}
	}
	// Both holders gone: the block is lost, records withdrawn.
	if got := n.ReplicaCount(c); got != 0 {
		t.Fatalf("replicas after departures = %d, want 0", got)
	}
	if got := n.Providers(c); len(got) != 0 {
		t.Fatalf("providers after departures = %v, want none", got)
	}
	if _, err := n.Fetch(ctx, c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fetch lost block: %v, want ErrNotFound", err)
	}
	// Departed nodes reject service with the permanent error...
	if _, err := n.Get(ctx, providers[0], c); !errors.Is(err, ErrNodeDeparted) {
		t.Fatalf("get on departed node: %v, want ErrNodeDeparted", err)
	}
	// ...and cannot Fail, Recover, or Depart again.
	if err := n.Fail(providers[0]); !errors.Is(err, ErrNodeDeparted) {
		t.Fatalf("fail departed: %v", err)
	}
	if err := n.Recover(providers[0]); !errors.Is(err, ErrNodeDeparted) {
		t.Fatalf("recover departed: %v", err)
	}
	if err := n.Depart(providers[0]); !errors.Is(err, ErrNodeDeparted) {
		t.Fatalf("double depart: %v", err)
	}
	// New Puts avoid departed nodes entirely.
	c2, err := n.Put(ctx, liveNodeID(t, n), []byte("second-block"))
	if err != nil {
		t.Fatalf("put after departures: %v", err)
	}
	for _, id := range n.Providers(c2) {
		for _, gone := range providers {
			if id == gone {
				t.Fatalf("replica placed on departed node %s", id)
			}
		}
	}
}

// liveNodeID returns a node currently able to serve Puts.
func liveNodeID(t *testing.T, n *Network) string {
	t.Helper()
	for _, id := range n.NodeIDs() {
		nd, err := n.Node(id)
		if err != nil {
			continue
		}
		if !nd.down && !nd.departed {
			return id
		}
	}
	t.Fatal("no live node")
	return ""
}

func TestRepairScanRestoresReplication(t *testing.T) {
	n := churnNet(t, 2, 5)
	reg := obs.NewRegistry()
	n.SetMetrics(reg)
	col := &obs.SpanCollector{}
	n.SetSpans(col)
	ctx := context.Background()

	var blocks [][]byte
	for i := 0; i < 6; i++ {
		blocks = append(blocks, []byte(fmt.Sprintf("payload-%d", i)))
	}
	for _, b := range blocks {
		if _, err := n.Put(ctx, "ipfs-00", b); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	// A clean network repairs nothing.
	rep, err := n.RepairScan(ctx)
	if err != nil {
		t.Fatalf("clean scan: %v", err)
	}
	if rep.Repaired != 0 || rep.UnderReplicated != 0 || rep.Remaining != 0 {
		t.Fatalf("clean scan repaired something: %+v", rep)
	}

	// Depart the primary: every block drops to one live replica.
	if err := n.Depart("ipfs-00"); err != nil {
		t.Fatalf("depart: %v", err)
	}
	if got := len(n.UnderReplicated()); got != len(blocks) {
		t.Fatalf("under-replicated census = %d, want %d", got, len(blocks))
	}
	rep, err = n.RepairScan(ctx)
	if err != nil {
		t.Fatalf("repair scan: %v", err)
	}
	if rep.UnderReplicated != len(blocks) || rep.Repaired != len(blocks) || rep.Remaining != 0 || rep.Lost != 0 {
		t.Fatalf("unexpected repair report %+v", rep)
	}
	if got := len(n.UnderReplicated()); got != 0 {
		t.Fatalf("still %d under-replicated after repair", got)
	}
	for _, b := range blocks {
		if got := n.ReplicaCount(cidOf(b)); got != 2 {
			t.Fatalf("replicas = %d after repair, want 2", got)
		}
	}
	if got := reg.Counter("repair_blocks_total").Value(); got != int64(len(blocks)) {
		t.Fatalf("repair_blocks_total = %d, want %d", got, len(blocks))
	}
	if got := reg.Gauge("under_replicated_blocks").Value(); got != 0 {
		t.Fatalf("under_replicated_blocks = %v, want 0", got)
	}
	spans := col.Spans()
	var repairSpans int
	for _, sp := range spans {
		if sp.Name == "repair" {
			repairSpans++
			if sp.Attrs["repaired"] != fmt.Sprint(len(blocks)) && sp.Attrs["repaired"] != "0" {
				t.Fatalf("repair span attrs = %v", sp.Attrs)
			}
		}
	}
	if repairSpans != 2 {
		t.Fatalf("want 2 repair spans, got %d", repairSpans)
	}
	// A second scan is idempotent.
	rep, err = n.RepairScan(ctx)
	if err != nil || rep.Repaired != 0 {
		t.Fatalf("second scan: %+v err=%v", rep, err)
	}
}

func TestRepairScanReportsLostBlocks(t *testing.T) {
	n := churnNet(t, 2, 5)
	ctx := context.Background()
	c, err := n.Put(ctx, "ipfs-00", []byte("soon-lost"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	for _, id := range n.Providers(c) {
		if err := n.Depart(id); err != nil {
			t.Fatalf("depart: %v", err)
		}
	}
	// Re-announce the CID via a live node's record? No — records were
	// withdrawn with the departures, so the scan no longer sees the block
	// at all. Keep one stale record alive through a down (not departed)
	// holder instead.
	c2, err := n.Put(ctx, liveNodeID(t, n), []byte("down-held"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	for _, id := range n.Providers(c2) {
		if err := n.Fail(id); err != nil {
			t.Fatalf("fail: %v", err)
		}
	}
	rep, err := n.RepairScan(ctx)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if rep.Lost != 1 || rep.Remaining != 1 {
		t.Fatalf("report %+v, want Lost=1 Remaining=1", rep)
	}
	// The holders come back: Recover re-announces, repair restores.
	for _, id := range n.NodeIDs() {
		if nd, _ := n.Node(id); nd != nil && nd.down && !nd.departed {
			if err := n.Recover(id); err != nil {
				t.Fatalf("recover %s: %v", id, err)
			}
		}
	}
	rep, err = n.RepairScan(ctx)
	if err != nil {
		t.Fatalf("scan after recover: %v", err)
	}
	if rep.Lost != 0 || rep.Remaining != 0 {
		t.Fatalf("report after recover %+v", rep)
	}
	if got := n.ReplicaCount(c2); got < 2 {
		t.Fatalf("replicas after recover+repair = %d, want >= 2", got)
	}
}

func TestRecoverReannouncesBlocks(t *testing.T) {
	n := churnNet(t, 2, 4)
	ctx := context.Background()
	c, err := n.Put(ctx, "ipfs-00", []byte("reannounce-me"))
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	replica := ""
	for _, id := range n.Providers(c) {
		if id != "ipfs-00" {
			replica = id
		}
	}
	if err := n.Fail(replica); err != nil {
		t.Fatalf("fail: %v", err)
	}
	// The scan withdraws the down node's record and re-replicates onto a
	// third node.
	if _, err := n.RepairScan(ctx); err != nil {
		t.Fatalf("scan: %v", err)
	}
	for _, id := range n.Providers(c) {
		if id == replica {
			t.Fatalf("stale provider record for down node %s survived the scan", replica)
		}
	}
	if got := n.ReplicaCount(c); got != 2 {
		t.Fatalf("replicas after scan = %d, want 2", got)
	}
	// Recover re-announces: the node's datastore survived, so its record
	// returns and the block is now over-replicated — which repair accepts.
	if err := n.Recover(replica); err != nil {
		t.Fatalf("recover: %v", err)
	}
	found := false
	for _, id := range n.Providers(c) {
		if id == replica {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered node %s missing from providers %v", replica, n.Providers(c))
	}
	if got := n.ReplicaCount(c); got != 3 {
		t.Fatalf("replicas after recover = %d, want 3", got)
	}
	if rep, err := n.RepairScan(ctx); err != nil || rep.Repaired != 0 {
		t.Fatalf("scan after recover: %+v err=%v", rep, err)
	}
}

func TestRejoinStorageNodeStartsEmpty(t *testing.T) {
	n := churnNet(t, 2, 3)
	ctx := context.Background()
	if _, err := n.Put(ctx, "ipfs-01", []byte("pre-departure")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := n.Rejoin("ipfs-01"); err == nil {
		t.Fatal("rejoin of a present node must fail")
	}
	if err := n.Depart("ipfs-01"); err != nil {
		t.Fatalf("depart: %v", err)
	}
	if err := n.Rejoin("ipfs-01"); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	nd, err := n.Node("ipfs-01")
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	if nd.StoredBlocks() != 0 {
		t.Fatalf("rejoined node holds %d blocks, want 0", nd.StoredBlocks())
	}
	// Fully serviceable again.
	c, err := n.Put(ctx, "ipfs-01", []byte("post-rejoin"))
	if err != nil {
		t.Fatalf("put after rejoin: %v", err)
	}
	if got := n.ReplicaCount(c); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
}

func TestChurnPlanApplyStorage(t *testing.T) {
	n := churnNet(t, 2, 4)
	plan, err := ParseChurnPlan(
		"depart:ipfs-03@iter0,crash:ipfs-02@iter0,crash:agg-p0-0@iter0," +
			"rejoin:ipfs-02@iter1,rejoin:ipfs-03@iter1,rejoin:trainer-05@iter1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ctx := context.Background()
	if _, err := n.Put(ctx, "ipfs-02", []byte("keeper")); err != nil {
		t.Fatalf("put: %v", err)
	}

	applied, rest, err := plan.ApplyStorage(n, 0)
	if err != nil {
		t.Fatalf("apply iter0: %v", err)
	}
	if len(applied) != 2 {
		t.Fatalf("applied = %v, want 2 storage events", applied)
	}
	if len(rest) != 1 || rest[0].Node != "agg-p0-0" || rest[0].Kind != ChurnCrash {
		t.Fatalf("rest = %+v, want the aggregator crash", rest)
	}
	if got, _ := n.Node("ipfs-03"); !got.departed {
		t.Fatal("ipfs-03 should have departed")
	}
	if got, _ := n.Node("ipfs-02"); !got.down || got.departed {
		t.Fatal("ipfs-02 should be down but not departed")
	}

	applied, rest, err = plan.ApplyStorage(n, 1)
	if err != nil {
		t.Fatalf("apply iter1: %v", err)
	}
	if len(applied) != 2 || len(rest) != 1 || rest[0].Node != "trainer-05" {
		t.Fatalf("iter1 applied=%v rest=%+v", applied, rest)
	}
	crashed, _ := n.Node("ipfs-02")
	if crashed.down || crashed.StoredBlocks() == 0 {
		t.Fatal("ipfs-02 should have recovered with its datastore intact")
	}
	rejoined, _ := n.Node("ipfs-03")
	if rejoined.down || rejoined.departed || rejoined.StoredBlocks() != 0 {
		t.Fatal("ipfs-03 should have rejoined empty")
	}

	// A nil network passes everything through.
	_, rest, err = plan.ApplyStorage(nil, 0)
	if err != nil || len(rest) != 3 {
		t.Fatalf("nil network: rest=%d err=%v", len(rest), err)
	}
}
