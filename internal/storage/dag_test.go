package storage

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"ipls/internal/dag"
)

func TestPutGetDAGRoundTrip(t *testing.T) {
	n, _ := newTestNetwork(t, 3, 2)
	rng := rand.New(rand.NewSource(50))
	data := make([]byte, 50_000)
	rng.Read(data)
	root, err := n.PutDAG(context.Background(), "node-00", data, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if root.Size != 50_000 {
		t.Fatalf("root size %d", root.Size)
	}
	got, err := n.GetDAG(context.Background(), "node-00", root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DAG round trip mismatch")
	}
}

func TestGetDAGSurvivesNodeFailureWithReplication(t *testing.T) {
	n, _ := newTestNetwork(t, 4, 2)
	n.SetPlacement(PlacementRendezvous)
	rng := rand.New(rand.NewSource(51))
	data := make([]byte, 20_000)
	rng.Read(data)
	root, err := n.PutDAG(context.Background(), "node-00", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Fail("node-00"); err != nil {
		t.Fatal(err)
	}
	// Fetching "from" the dead node falls back to content routing across
	// the replicas.
	got, err := n.GetDAG(context.Background(), "node-01", root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DAG reassembly after failure mismatch")
	}
}

func TestGetDAGDetectsCorruption(t *testing.T) {
	n, _ := newTestNetwork(t, 1, 1)
	rng := rand.New(rand.NewSource(52))
	data := make([]byte, 10_000)
	rng.Read(data)
	root, err := n.PutDAG(context.Background(), "node-00", data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one stored leaf.
	nd, _ := n.Node("node-00")
	cids := nd.BlockCIDs()
	if err := n.Corrupt("node-00", cids[len(cids)/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := n.GetDAG(context.Background(), "node-00", root); err == nil {
		t.Fatal("corrupted DAG block not detected")
	}
}

func TestPutDAGBlockCount(t *testing.T) {
	n, _ := newTestNetwork(t, 1, 1)
	rng := rand.New(rand.NewSource(53))
	data := make([]byte, 10_000)
	rng.Read(data)
	if _, err := n.PutDAG(context.Background(), "node-00", data, 1000); err != nil {
		t.Fatal(err)
	}
	nd, _ := n.Node("node-00")
	if want := dag.Blocks(10_000, 1000); nd.StoredBlocks() != want {
		t.Fatalf("stored %d blocks, want %d", nd.StoredBlocks(), want)
	}
}
