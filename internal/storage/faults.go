package storage

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Fault injection for the storage network. The paper assumes an
// honest-but-unreliable substrate (§III-A): nodes crash, recover, respond
// slowly, or fail intermittently. These controls make every failure mode
// reproducible so the resilience layer's retries and failovers can be
// exercised deterministically ("iplssim -faults crash:node1@iter2").

// Slow makes every operation served by the node take at least d. The delay
// honors the caller's context, so a deadline that expires mid-wait cancels
// the operation. d <= 0 clears the fault.
func (n *Network) Slow(id string, d time.Duration) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if d < 0 {
		d = 0
	}
	nd.slow = d
	return nil
}

// Flaky makes the node fail each operation independently with probability
// p (0 clears the fault), reporting a transient ErrNodeDown. Failures draw
// from the network's seeded fault source (SetFaultSeed), so runs replay.
func (n *Network) Flaky(id string, p float64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	nd.flaky = p
	return nil
}

// SetFaultSeed seeds the random source behind flaky-node coin flips so
// fault scenarios reproduce exactly.
func (n *Network) SetFaultSeed(seed int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultRand = rand.New(rand.NewSource(seed))
}

// gate admits one operation against a node: it rejects immediately when
// the context is done or the node is down/unknown, serves the node's
// injected slowness (context-aware, without holding the network lock), and
// applies the flaky coin flip. A nil error means the operation may proceed.
func (n *Network) gate(ctx context.Context, nodeID string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n.mu.Lock()
	nd, ok := n.nodes[nodeID]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	if err := nd.availErr(); err != nil {
		n.mu.Unlock()
		return err
	}
	slow := nd.slow
	flake := false
	if nd.flaky > 0 {
		if n.faultRand == nil {
			n.faultRand = rand.New(rand.NewSource(1))
		}
		flake = n.faultRand.Float64() < nd.flaky
	}
	n.mu.Unlock()
	if slow > 0 {
		t := time.NewTimer(slow)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
	if flake {
		return fmt.Errorf("%w: %q (transient)", ErrNodeDown, nodeID)
	}
	return nil
}

// FaultKind names a scheduled fault action.
type FaultKind string

// Fault actions a plan can schedule.
const (
	FaultCrash   FaultKind = "crash"
	FaultRecover FaultKind = "recover"
	FaultSlow    FaultKind = "slow"
	FaultFlaky   FaultKind = "flaky"
)

// FaultEvent is one scheduled fault: apply Kind to Node at iteration Iter.
type FaultEvent struct {
	Kind FaultKind
	Node string
	Iter int
	// Delay parameterizes slow faults; Prob parameterizes flaky faults.
	Delay time.Duration
	Prob  float64
}

// FaultPlan is an iteration-indexed fault schedule.
type FaultPlan struct {
	events []FaultEvent
}

// ParseFaultPlan parses a comma-separated fault scenario, e.g.
//
//	crash:node1@iter2,recover:node1@iter4,slow:node0@iter1:50ms,flaky:node2@iter0:0.3
//
// Grammar per event: KIND:NODE@iterN[:ARG] where KIND is crash, recover,
// slow (ARG = duration) or flaky (ARG = probability in [0,1]).
func ParseFaultPlan(s string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	if strings.TrimSpace(s) == "" {
		return plan, nil
	}
	for _, raw := range strings.Split(s, ",") {
		ev, err := parseFaultEvent(strings.TrimSpace(raw))
		if err != nil {
			return nil, err
		}
		plan.events = append(plan.events, ev)
	}
	sort.SliceStable(plan.events, func(i, j int) bool { return plan.events[i].Iter < plan.events[j].Iter })
	return plan, nil
}

func parseFaultEvent(s string) (FaultEvent, error) {
	parts := strings.Split(s, ":")
	if len(parts) < 2 {
		return FaultEvent{}, fmt.Errorf("storage: fault %q: want KIND:NODE@iterN[:ARG]", s)
	}
	kind := FaultKind(parts[0])
	at := strings.Split(parts[1], "@")
	if len(at) != 2 || !strings.HasPrefix(at[1], "iter") {
		return FaultEvent{}, fmt.Errorf("storage: fault %q: want NODE@iterN after kind", s)
	}
	iter, err := strconv.Atoi(strings.TrimPrefix(at[1], "iter"))
	if err != nil || iter < 0 {
		return FaultEvent{}, fmt.Errorf("storage: fault %q: bad iteration %q", s, at[1])
	}
	ev := FaultEvent{Kind: kind, Node: at[0], Iter: iter}
	arg := ""
	if len(parts) > 2 {
		arg = strings.Join(parts[2:], ":")
	}
	switch kind {
	case FaultCrash, FaultRecover:
		if arg != "" {
			return FaultEvent{}, fmt.Errorf("storage: fault %q: %s takes no argument", s, kind)
		}
	case FaultSlow:
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return FaultEvent{}, fmt.Errorf("storage: fault %q: slow needs a positive duration, got %q", s, arg)
		}
		ev.Delay = d
	case FaultFlaky:
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p < 0 || p > 1 {
			return FaultEvent{}, fmt.Errorf("storage: fault %q: flaky needs a probability in [0,1], got %q", s, arg)
		}
		ev.Prob = p
	default:
		return FaultEvent{}, fmt.Errorf("storage: fault %q: unknown kind %q", s, kind)
	}
	return ev, nil
}

// NewFaultPlan builds a plan directly from events (the scenario
// compiler's entry point), ordered by iteration like ParseFaultPlan.
// Unlike the textual grammar, zero Delay/Prob values are allowed: they
// are the clearing edges of a scheduled fault window.
func NewFaultPlan(events []FaultEvent) *FaultPlan {
	plan := &FaultPlan{events: append([]FaultEvent(nil), events...)}
	sort.SliceStable(plan.events, func(i, j int) bool { return plan.events[i].Iter < plan.events[j].Iter })
	return plan
}

// Empty reports whether the plan schedules nothing.
func (p *FaultPlan) Empty() bool { return p == nil || len(p.events) == 0 }

// Events returns the plan's schedule, ordered by iteration.
func (p *FaultPlan) Events() []FaultEvent {
	if p == nil {
		return nil
	}
	out := make([]FaultEvent, len(p.events))
	copy(out, p.events)
	return out
}

// Apply injects every fault scheduled for the given iteration into the
// network, returning human-readable descriptions of what it did. Call it
// at the top of each protocol iteration.
func (p *FaultPlan) Apply(n *Network, iter int) ([]string, error) {
	if p == nil {
		return nil, nil
	}
	var applied []string
	for _, ev := range p.events {
		if ev.Iter != iter {
			continue
		}
		var err error
		switch ev.Kind {
		case FaultCrash:
			err = n.Fail(ev.Node)
			applied = append(applied, fmt.Sprintf("crash %s", ev.Node))
		case FaultRecover:
			err = n.Recover(ev.Node)
			applied = append(applied, fmt.Sprintf("recover %s", ev.Node))
		case FaultSlow:
			err = n.Slow(ev.Node, ev.Delay)
			applied = append(applied, fmt.Sprintf("slow %s by %s", ev.Node, ev.Delay))
		case FaultFlaky:
			err = n.Flaky(ev.Node, ev.Prob)
			applied = append(applied, fmt.Sprintf("flaky %s p=%v", ev.Node, ev.Prob))
		}
		if err != nil {
			return applied, fmt.Errorf("storage: apply fault at iter %d: %w", iter, err)
		}
	}
	return applied, nil
}
