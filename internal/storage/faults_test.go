package storage

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSlowNodeHonorsContextDeadline(t *testing.T) {
	n, _ := newTestNetwork(t, 2, 1)
	if err := n.Slow("node-00", time.Minute); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Put(ctx, "node-00", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Put on slow node: err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Put waited %v despite a 10ms deadline", elapsed)
	}
	// Clearing the fault restores normal service.
	if err := n.Slow("node-00", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Put(context.Background(), "node-00", []byte("x")); err != nil {
		t.Fatalf("Put after clearing slow fault: %v", err)
	}
}

func TestFlakyNodeIsDeterministicUnderSeed(t *testing.T) {
	outcomes := func() []bool {
		n, _ := newTestNetwork(t, 2, 1)
		n.SetFaultSeed(7)
		if err := n.Flaky("node-00", 0.5); err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := n.Put(context.Background(), "node-00", []byte{byte(i)})
			if err != nil && !errors.Is(err, ErrNodeDown) {
				t.Fatalf("flaky failure has wrong class: %v", err)
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(), outcomes()
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flaky outcomes diverge at op %d despite identical seed", i)
		}
		if !a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Fatalf("flaky p=0.5 produced %d/%d failures; want a mix", failures, len(a))
	}
}

func TestFaultControlsRejectUnknownNode(t *testing.T) {
	n, _ := newTestNetwork(t, 2, 1)
	if err := n.Slow("ghost", time.Second); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Slow(ghost) = %v, want ErrUnknownNode", err)
	}
	if err := n.Flaky("ghost", 0.5); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Flaky(ghost) = %v, want ErrUnknownNode", err)
	}
}

func TestParseFaultPlan(t *testing.T) {
	plan, err := ParseFaultPlan("crash:node1@iter2, recover:node1@iter4,slow:node0@iter1:50ms,flaky:node2@iter0:0.3")
	if err != nil {
		t.Fatal(err)
	}
	evs := plan.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Sorted by iteration.
	want := []FaultEvent{
		{Kind: FaultFlaky, Node: "node2", Iter: 0, Prob: 0.3},
		{Kind: FaultSlow, Node: "node0", Iter: 1, Delay: 50 * time.Millisecond},
		{Kind: FaultCrash, Node: "node1", Iter: 2},
		{Kind: FaultRecover, Node: "node1", Iter: 4},
	}
	for i, w := range want {
		if evs[i] != w {
			t.Fatalf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
	if plan.Empty() {
		t.Fatal("plan with events reports Empty")
	}
	empty, err := ParseFaultPlan("  ")
	if err != nil || !empty.Empty() {
		t.Fatalf("blank plan: (%v, empty=%v)", err, empty.Empty())
	}
}

func TestParseFaultPlanErrors(t *testing.T) {
	for _, bad := range []string{
		"crash",                   // no target
		"crash:node1",             // no iteration
		"crash:node1@2",           // missing iter prefix
		"crash:node1@iter-1",      // negative iteration
		"crash:node1@iter2:extra", // crash takes no arg
		"slow:node1@iter2",        // slow needs a duration
		"slow:node1@iter2:fast",   // bad duration
		"flaky:node1@iter2:1.5",   // probability out of range
		"melt:node1@iter2",        // unknown kind
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) succeeded, want error", bad)
		}
	}
}

func TestFaultPlanApply(t *testing.T) {
	n, _ := newTestNetwork(t, 3, 1)
	plan, err := ParseFaultPlan("crash:node-01@iter1,recover:node-01@iter2")
	if err != nil {
		t.Fatal(err)
	}
	if msgs, err := plan.Apply(n, 0); err != nil || len(msgs) != 0 {
		t.Fatalf("iter 0: (%v, %v), want no-op", msgs, err)
	}
	if _, err := plan.Apply(n, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Put(context.Background(), "node-01", []byte("x")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("after crash event: err = %v, want ErrNodeDown", err)
	}
	if _, err := plan.Apply(n, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Put(context.Background(), "node-01", []byte("x")); err != nil {
		t.Fatalf("after recover event: %v", err)
	}
}
