package storage

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ipls/internal/cid"
)

// FSStore is the durable content-addressed BlockStore: a flat-fanout CAS
// directory keyed by CID, the role the IPFS flatfs datastore plays under a
// real IPLS peer. Layout:
//
//	root/
//	  tmp/              staging area for atomic writes
//	  <cid[:2]>/<cid>   block payload, one file per CID
//
// Writes stage into tmp/ and rename into place, so a crash mid-Put leaves
// either the whole block or nothing — never a torn file under a valid CID
// name. Reads re-hash the payload and report mismatches as ErrIntegrity:
// unlike the memory store (whose corruption model is the paper's §III-A
// adversary, detected by callers), bytes rotting on local disk are an
// infrastructure failure the backend itself must surface.
//
// An in-memory index (CID → size) is rebuilt by scanning the fanout dirs at
// Open, so Has/Keys never touch the disk afterwards.
type FSStore struct {
	root string

	mu     sync.Mutex
	index  map[cid.CID]int64
	bytes  int64
	closed bool
}

var (
	_ BlockStore = (*FSStore)(nil)
	_ Sizer      = (*FSStore)(nil)
	_ Corrupter  = (*FSStore)(nil)
)

// OpenFSStore opens (creating if needed) a disk-backed block store rooted at
// dir, rebuilding its index from the blocks already on disk — this is the
// restart path: a store reopened on the same directory serves every block
// the previous process stored.
func OpenFSStore(dir string) (*FSStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("%w: empty store directory", ErrBackend)
	}
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		return nil, fmt.Errorf("%w: create %s: %v", ErrBackend, dir, err)
	}
	// Clear staging leftovers from a crashed writer; they were never
	// renamed into place, so nothing references them.
	if stale, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range stale {
			os.Remove(filepath.Join(dir, "tmp", e.Name()))
		}
	}
	s := &FSStore{root: dir, index: make(map[cid.CID]int64)}
	fanouts, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("%w: scan %s: %v", ErrBackend, dir, err)
	}
	for _, fan := range fanouts {
		if !fan.IsDir() || fan.Name() == "tmp" {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("%w: scan %s: %v", ErrBackend, fan.Name(), err)
		}
		for _, e := range entries {
			c, perr := cid.Parse(e.Name())
			if perr != nil {
				continue // not a block file; ignore
			}
			info, ierr := e.Info()
			if ierr != nil {
				continue
			}
			s.index[c] = info.Size()
			s.bytes += info.Size()
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *FSStore) Dir() string { return s.root }

func (s *FSStore) path(c cid.CID) string {
	h := string(c)
	return filepath.Join(s.root, h[:2], h)
}

// Put writes data to the CAS atomically: stage into tmp/, fsync-free rename
// into the fanout slot. Re-putting an existing block is an index hit and
// touches no files.
func (s *FSStore) Put(ctx context.Context, data []byte) (cid.CID, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	c := cid.Sum(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrStoreClosed
	}
	if _, ok := s.index[c]; ok {
		return c, nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.root, "tmp"), "put-*")
	if err != nil {
		return "", fmt.Errorf("%w: stage block: %v", ErrBackend, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return "", fmt.Errorf("%w: write block: %v", ErrBackend, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("%w: close block: %v", ErrBackend, err)
	}
	dst := s.path(c)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("%w: fanout dir: %v", ErrBackend, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		return "", fmt.Errorf("%w: commit block: %v", ErrBackend, err)
	}
	s.index[c] = int64(len(data))
	s.bytes += int64(len(data))
	return c, nil
}

// Get reads the block and re-hashes it before returning: a payload that no
// longer matches its CID is ErrIntegrity, not silently served.
func (s *FSStore) Get(ctx context.Context, c cid.CID) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStoreClosed
	}
	_, ok := s.index[c]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, c.Short())
	}
	data, err := os.ReadFile(s.path(c))
	if err != nil {
		if os.IsNotExist(err) {
			// Index said present but the file vanished — treat as
			// missing and drop the stale index entry.
			s.dropIndex(c)
			return nil, fmt.Errorf("%w: %s", ErrNotFound, c.Short())
		}
		return nil, fmt.Errorf("%w: read %s: %v", ErrBackend, c.Short(), err)
	}
	if !cid.Verify(data, c) {
		return nil, fmt.Errorf("%w: %s", ErrIntegrity, c.Short())
	}
	return data, nil
}

func (s *FSStore) dropIndex(c cid.CID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sz, ok := s.index[c]; ok {
		s.bytes -= sz
		delete(s.index, c)
	}
}

// Has answers from the in-memory index without touching disk.
func (s *FSStore) Has(ctx context.Context, c cid.CID) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrStoreClosed
	}
	_, ok := s.index[c]
	return ok, nil
}

// Delete unlinks the block file (no-op when absent).
func (s *FSStore) Delete(ctx context.Context, c cid.CID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	sz, ok := s.index[c]
	if !ok {
		return nil
	}
	if err := os.Remove(s.path(c)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("%w: delete %s: %v", ErrBackend, c.Short(), err)
	}
	s.bytes -= sz
	delete(s.index, c)
	return nil
}

// Keys lists stored CIDs in sorted order, from the index.
func (s *FSStore) Keys(ctx context.Context) ([]cid.CID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStoreClosed
	}
	out := make([]cid.CID, 0, len(s.index))
	for c := range s.index {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// StoredBytes returns the total payload bytes on disk per the index.
func (s *FSStore) StoredBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Corrupt flips a byte of the on-disk block in place — the bit-rot test
// hook. A subsequent Get surfaces ErrIntegrity.
func (s *FSStore) Corrupt(ctx context.Context, c cid.CID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	if _, ok := s.index[c]; !ok {
		return ErrNotFound
	}
	p := s.path(c)
	data, err := os.ReadFile(p)
	if err != nil {
		return fmt.Errorf("%w: read %s: %v", ErrBackend, c.Short(), err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return fmt.Errorf("%w: rewrite %s: %v", ErrBackend, c.Short(), err)
	}
	return nil
}

// Close marks the store closed. The on-disk blocks remain; reopening the
// same directory recovers them.
func (s *FSStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.index = nil
	s.bytes = 0
	return nil
}
