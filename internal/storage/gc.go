package storage

import (
	"context"
	"sort"
	"strconv"
	"time"

	"ipls/internal/cid"
	"ipls/internal/obs"
)

// Garbage collection of blocks from superseded iterations. DeleteAll is the
// per-CID cleanup the session layer already drives; GC is the sweep that
// makes the durable backend's footprint track the protocol's working set:
// walk the provider records (the index of everything the network is still
// advertising), keep what the caller pins — current-iteration records and
// checkpoint DAG roots — and reclaim the rest. The paper motivates exactly
// this: "gradients and updates [are] only needed for a short period of
// time" (§VI), so a disk-backed node that never collects would grow without
// bound across rounds.

// GCReport summarizes one collection sweep.
type GCReport struct {
	// Scanned counts the provider-indexed blocks examined.
	Scanned int
	// Kept counts blocks protected by the keep set.
	Kept int
	// Collected counts blocks deleted from at least one node.
	Collected int
	// BytesFreed totals the payload bytes reclaimed, summed across every
	// replica that dropped a copy.
	BytesFreed int64
}

// GC deletes every provider-indexed block whose CID is not in keep,
// withdrawing its records, and also sweeps unreferenced blocks sitting in
// node stores without records (e.g. merge-fetch caches from collected
// iterations). Deletions count into storage_gc_blocks_total /
// storage_gc_bytes_total, and the sweep is recorded as a "gc" span when a
// sink is installed. The sweep is deterministic: CID order, node order.
func (n *Network) GC(ctx context.Context, keep map[cid.CID]bool) (GCReport, error) {
	start := time.Now()
	n.mu.Lock()
	report, err := n.gcLocked(ctx, keep)
	sink := n.spans
	seq := n.repairSeq
	n.repairSeq++
	n.mu.Unlock()
	if sink != nil {
		sp := obs.Span{
			Name:  "gc",
			Actor: "network",
			Context: obs.SpanContext{
				Session: "storage",
				Iter:    seq,
				SpanID:  obs.NewSpanID(),
			},
			Start: start,
			End:   time.Now(),
			Bytes: report.BytesFreed,
			Attrs: map[string]string{
				"scanned":   strconv.Itoa(report.Scanned),
				"kept":      strconv.Itoa(report.Kept),
				"collected": strconv.Itoa(report.Collected),
			},
		}
		if err != nil {
			sp.Attrs["error"] = err.Error()
		}
		sink.EmitSpan(sp)
	}
	return report, err
}

func (n *Network) gcLocked(ctx context.Context, keep map[cid.CID]bool) (GCReport, error) {
	var report GCReport

	// Candidate set: everything advertised plus everything actually held
	// (a node can hold unadvertised blocks after a merge remote-fetch whose
	// record was withdrawn).
	candidates := make(map[cid.CID]bool, len(n.providers))
	for c := range n.providers {
		candidates[c] = true
	}
	for _, id := range n.order {
		keys, err := n.nodes[id].store.Keys(context.Background())
		if err != nil {
			continue
		}
		for _, c := range keys {
			candidates[c] = true
		}
	}
	cids := make([]cid.CID, 0, len(candidates))
	for c := range candidates {
		cids = append(cids, c)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })

	for _, c := range cids {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		report.Scanned++
		if keep[c] {
			report.Kept++
			continue
		}
		dropped := false
		for _, id := range n.order {
			nd := n.nodes[id]
			has, _ := nd.store.Has(context.Background(), c)
			if !has {
				continue
			}
			var size int64
			if data, gerr := nd.store.Get(context.Background(), c); gerr == nil {
				size = int64(len(data))
			}
			if derr := nd.store.Delete(context.Background(), c); derr != nil {
				nd.noteStoreErr(derr)
				continue
			}
			dropped = true
			report.BytesFreed += size
			n.gcBytes.Add(size)
		}
		delete(n.providers, c)
		if dropped {
			report.Collected++
			n.gcBlocks.Inc()
		}
	}
	return report, nil
}
