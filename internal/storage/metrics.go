package storage

import "ipls/internal/obs"

// nodeMetrics are the per-node instruments, labelled with the node ID.
// Every field may be nil (a no-op) when the network is not instrumented.
type nodeMetrics struct {
	// bytesUploaded counts payload bytes written to this node by Put;
	// bytesDownloaded counts payload bytes served by Get/Fetch/MergeGet.
	bytesUploaded   *obs.Counter
	bytesDownloaded *obs.Counter
	// blocksStored counts primary writes; blocksReplicated counts replica
	// copies placed on this node by the placement policy.
	blocksStored     *obs.Counter
	blocksReplicated *obs.Counter
}

func resolveNodeMetrics(reg *obs.Registry, id string) nodeMetrics {
	return nodeMetrics{
		bytesUploaded:    reg.Counter("bytes_uploaded_total", "node", id),
		bytesDownloaded:  reg.Counter("bytes_downloaded_total", "node", id),
		blocksStored:     reg.Counter("blocks_stored_total", "node", id),
		blocksReplicated: reg.Counter("blocks_replicated_total", "node", id),
	}
}

// SetMetrics points the network's instrumentation at a registry. The
// network always has one (NewNetwork creates a private registry so
// counters like remote_fetches_total work with no setup); passing nil
// resets to a fresh private registry. Counter values do not carry over.
func (n *Network) SetMetrics(reg *obs.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.setMetricsLocked(reg)
}

func (n *Network) setMetricsLocked(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n.reg = reg
	n.remoteFetchCtr = reg.Counter("remote_fetches_total")
	n.mergeOps = reg.Counter("merge_ops_total")
	// merge_bytes_saved_total is the §III-E payoff: bytes the aggregator
	// did NOT download because the provider pre-aggregated the blocks
	// (sum of merged input sizes minus the single output size).
	n.mergeBytesSaved = reg.Counter("merge_bytes_saved_total")
	// repair_blocks_total counts replica copies created by RepairScan;
	// under_replicated_blocks is the scan's closing census of blocks still
	// below target (0 means the replication factor is fully restored).
	n.repairCtr = reg.Counter("repair_blocks_total")
	n.underRepl = reg.Gauge("under_replicated_blocks")
	// partition_active_nodes gauges how many nodes the current network
	// split isolates (0 = no partition); partition_heals_total counts
	// closed partition windows (each followed by re-announce + repair).
	n.partitionActive = reg.Gauge("partition_active_nodes")
	n.partitionHeals = reg.Counter("partition_heals_total")
	// Block-cache hit ratio over the disk backend, and GC reclamation.
	n.cacheHits = reg.Counter("storage_cache_hits_total")
	n.cacheMisses = reg.Counter("storage_cache_misses_total")
	n.gcBlocks = reg.Counter("storage_gc_blocks_total")
	n.gcBytes = reg.Counter("storage_gc_bytes_total")
	for _, nd := range n.nodes {
		nd.metrics = resolveNodeMetrics(reg, nd.id)
		if cs, ok := nd.store.(*CachedStore); ok {
			cs.SetMetrics(n.cacheHits, n.cacheMisses)
		}
	}
}

// Metrics returns the registry the network currently reports into.
func (n *Network) Metrics() *obs.Registry {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reg
}
