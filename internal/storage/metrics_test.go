package storage

import (
	"context"
	"math/big"
	"strings"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/scalar"
)

func metricsNetwork(t *testing.T, replicas int) (*Network, *obs.Registry) {
	t.Helper()
	field := scalar.NewField(big.NewInt(7919))
	net := NewNetwork(field, replicas)
	reg := obs.NewRegistry()
	net.SetMetrics(reg)
	for _, id := range []string{"s0", "s1", "s2"} {
		net.AddNode(id)
	}
	return net, reg
}

func encodeBlock(t *testing.T, vals ...int64) []byte {
	t.Helper()
	b := model.Block{Values: make([]*big.Int, len(vals))}
	for i, v := range vals {
		b.Values[i] = big.NewInt(v)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestPutGetCountsBytes(t *testing.T) {
	net, reg := metricsNetwork(t, 1)
	data := []byte("hello metrics")
	c, err := net.Put(context.Background(), "s0", data)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("bytes_uploaded_total", "node", "s0").Value(); got != int64(len(data)) {
		t.Fatalf("bytes_uploaded_total = %d, want %d", got, len(data))
	}
	if got := reg.Counter("blocks_stored_total", "node", "s0").Value(); got != 1 {
		t.Fatalf("blocks_stored_total = %d, want 1", got)
	}
	if _, err := net.Get(context.Background(), "s0", c); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Fetch(context.Background(), c); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("bytes_downloaded_total", "node", "s0").Value(); got != 2*int64(len(data)) {
		t.Fatalf("bytes_downloaded_total = %d, want %d", got, 2*len(data))
	}
}

func TestReplicationCountsReplicas(t *testing.T) {
	net, reg := metricsNetwork(t, 3)
	if _, err := net.Put(context.Background(), "s0", []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	replicated := reg.Counter("blocks_replicated_total", "node", "s1").Value() +
		reg.Counter("blocks_replicated_total", "node", "s2").Value()
	if replicated != 2 {
		t.Fatalf("replica count = %d, want 2", replicated)
	}
	// The primary stored it; replicas don't count as primary stores.
	if got := reg.Counter("blocks_stored_total", "node", "s0").Value(); got != 1 {
		t.Fatalf("blocks_stored_total = %d, want 1", got)
	}
}

func TestMergeGetSavesBytesAndCountsRemoteFetches(t *testing.T) {
	net, reg := metricsNetwork(t, 1)
	b1 := encodeBlock(t, 1, 2)
	b2 := encodeBlock(t, 3, 4)
	c1, err := net.Put(context.Background(), "s0", b1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := net.Put(context.Background(), "s1", b2) // not on s0: forces a remote fetch
	if err != nil {
		t.Fatal(err)
	}
	out, err := net.MergeGet(context.Background(), "s0", []cid.CID{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("remote_fetches_total").Value(); got != 1 {
		t.Fatalf("remote_fetches_total = %d, want 1", got)
	}
	if got := reg.Counter("merge_ops_total").Value(); got != 1 {
		t.Fatalf("merge_ops_total = %d, want 1", got)
	}
	wantSaved := int64(len(b1)+len(b2)) - int64(len(out))
	if wantSaved <= 0 {
		t.Fatalf("test blocks too small to demonstrate savings (in=%d out=%d)", len(b1)+len(b2), len(out))
	}
	if got := reg.Counter("merge_bytes_saved_total").Value(); got != wantSaved {
		t.Fatalf("merge_bytes_saved_total = %d, want %d", got, wantSaved)
	}
}

func TestDefaultRegistryWorksWithoutSetMetrics(t *testing.T) {
	field := scalar.NewField(big.NewInt(7919))
	net := NewNetwork(field, 1)
	net.AddNode("s0")
	if _, err := net.Put(context.Background(), "s0", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if net.Metrics() == nil {
		t.Fatal("network should own a default registry")
	}
	var sb strings.Builder
	if err := net.Metrics().WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `bytes_uploaded_total{node="s0"} 1`) {
		t.Fatalf("default registry missing upload counter:\n%s", sb.String())
	}
}
