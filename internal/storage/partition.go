package storage

import (
	"context"
	"fmt"
	"sort"
)

// Network partitions. A partition isolates a set of nodes from the
// mainline side of the network for a scenario window: isolated nodes
// keep their datastores but cannot serve requests, join placement, or
// answer content routing until Heal closes the split. Unlike Fail, a
// partition is a single network-wide condition — Health reports it as a
// distinct readiness failure, and Heal performs the directory re-sync
// (provider re-announce) that a real IPFS node does when connectivity
// returns, after which a RepairScan restores any replication the
// mainline side rebuilt elsewhere in the meantime.

// Partition isolates the named nodes from the rest of the network.
// Departed nodes cannot be partitioned (they are gone, not isolated),
// and only one partition can be in force at a time.
func (n *Network) Partition(isolated []string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if active := n.partitionedLocked(); len(active) > 0 {
		return fmt.Errorf("storage: partition already active (%d nodes isolated)", len(active))
	}
	for _, id := range isolated {
		nd, ok := n.nodes[id]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownNode, id)
		}
		if nd.departed {
			return fmt.Errorf("%w: %q cannot be partitioned", ErrNodeDeparted, id)
		}
	}
	for _, id := range isolated {
		n.nodes[id].partitioned = true
	}
	n.partitionActive.Set(float64(len(isolated)))
	return nil
}

// Heal closes the active partition: every isolated node rejoins the
// mainline and re-announces the blocks it holds (the IPFS re-provide
// step), so provider records a RepairScan withdrew during the split are
// restored. Healing with no active partition is a no-op. Callers should
// follow up with a RepairScan to reconcile replication both ways.
func (n *Network) Heal() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	healed := n.partitionedLocked()
	if len(healed) == 0 {
		return nil
	}
	for _, id := range healed {
		nd := n.nodes[id]
		nd.partitioned = false
		keys, err := nd.store.Keys(context.Background())
		if err != nil {
			nd.noteStoreErr(err)
			continue
		}
		for _, c := range keys {
			n.announceLocked(id, c)
		}
	}
	n.partitionActive.Set(0)
	n.partitionHeals.Inc()
	return nil
}

// Partitioned returns the IDs of nodes isolated by the active partition,
// in sorted order (empty when the network is whole).
func (n *Network) Partitioned() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitionedLocked()
}

func (n *Network) partitionedLocked() []string {
	var out []string
	for _, id := range n.order {
		if n.nodes[id].partitioned {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
