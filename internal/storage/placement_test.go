package storage

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

func TestRingPlacementHotspots(t *testing.T) {
	// With ring placement and a fixed primary, every replica lands on the
	// same successor — the §VI problem statement.
	n, _ := newTestNetwork(t, 8, 2)
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 50; i++ {
		data := make([]byte, 16)
		rng.Read(data)
		if _, err := n.Put(context.Background(), "node-00", data); err != nil {
			t.Fatal(err)
		}
	}
	nd, _ := n.Node("node-01")
	if nd.StoredBlocks() != 50 {
		t.Fatalf("ring successor should hold all 50 replicas, has %d", nd.StoredBlocks())
	}
}

func TestRendezvousPlacementUniform(t *testing.T) {
	// Rendezvous placement spreads replicas of blocks with the same
	// primary across the other nodes near-uniformly.
	n, _ := newTestNetwork(t, 8, 2)
	n.SetPlacement(PlacementRendezvous)
	rng := rand.New(rand.NewSource(41))
	const blocks = 700
	for i := 0; i < blocks; i++ {
		data := make([]byte, 16)
		rng.Read(data)
		if _, err := n.Put(context.Background(), "node-00", data); err != nil {
			t.Fatal(err)
		}
	}
	// 7 candidate nodes, expectation 100 replicas each.
	for i := 1; i < 8; i++ {
		nd, _ := n.Node(fmt.Sprintf("node-%02d", i))
		got := nd.StoredBlocks()
		if got < 60 || got > 140 {
			t.Fatalf("node-%02d holds %d replicas; expected ~100 (uniform)", i, got)
		}
	}
}

func TestRendezvousPlacementDeterministic(t *testing.T) {
	// The same block must map to the same replica set on every network
	// instance — parties can locate replicas without coordination.
	build := func() *Network {
		n, _ := newTestNetwork(t, 5, 3)
		n.SetPlacement(PlacementRendezvous)
		return n
	}
	n1, n2 := build(), build()
	data := []byte("deterministic placement probe")
	c1, err := n1.Put(context.Background(), "node-02", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n2.Put(context.Background(), "node-02", data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("node-%02d", i)
		a, _ := n1.Node(id)
		b, _ := n2.Node(id)
		hasA, _ := a.Store().Has(context.Background(), c1)
		hasB, _ := b.Store().Has(context.Background(), c1)
		if hasA != hasB {
			t.Fatalf("placement differs on %s", id)
		}
	}
}

func TestRendezvousSkipsDownNodes(t *testing.T) {
	n, _ := newTestNetwork(t, 4, 3)
	n.SetPlacement(PlacementRendezvous)
	if err := n.Fail("node-02"); err != nil {
		t.Fatal(err)
	}
	c, err := n.Put(context.Background(), "node-00", []byte("replicated"))
	if err != nil {
		t.Fatal(err)
	}
	// Replicas must be on node-01 and node-03 (the only live candidates).
	for _, id := range []string{"node-01", "node-03"} {
		if _, err := n.Get(context.Background(), id, c); err != nil {
			t.Fatalf("replica missing on %s: %v", id, err)
		}
	}
}

func TestReplicaTargetsCount(t *testing.T) {
	n, _ := newTestNetwork(t, 6, 4)
	for _, p := range []Placement{PlacementRing, PlacementRendezvous} {
		n.SetPlacement(p)
		c, err := n.Put(context.Background(), "node-00", []byte(fmt.Sprintf("count-%d", p)))
		if err != nil {
			t.Fatal(err)
		}
		holders := 0
		for i := 0; i < 6; i++ {
			if _, err := n.Get(context.Background(), fmt.Sprintf("node-%02d", i), c); err == nil {
				holders++
			}
		}
		if holders != 4 {
			t.Fatalf("placement %d: %d holders, want 4", p, holders)
		}
	}
}
