package storage

import (
	"fmt"
	"sync"
)

// Announcement is one pub/sub message: IPFS pub/sub is how the paper's
// aggregators "publish their IPFS hashes for their partial updates"
// (§IV-B), so payloads are small — typically a serialized directory record.
type Announcement struct {
	Seq   int    `json:"seq"`
	Topic string `json:"topic"`
	From  string `json:"from"`
	Data  []byte `json:"data"`
}

// PubSub is a topic-based announcement log attached to the storage
// network, mirroring IPFS pub/sub. Messages are retained with sequence
// numbers so subscribers can both stream (in-process) and poll (over RPC)
// without a server-push channel.
type PubSub struct {
	mu     sync.Mutex
	nexts  map[string]int
	logs   map[string][]Announcement
	subs   map[string][]chan Announcement
	closed bool
}

// NewPubSub creates an empty pub/sub bus.
func NewPubSub() *PubSub {
	return &PubSub{
		nexts: make(map[string]int),
		logs:  make(map[string][]Announcement),
		subs:  make(map[string][]chan Announcement),
	}
}

// Topic builds the conventional topic name for a task's partition in an
// iteration.
func Topic(taskID string, iter, partition int) string {
	return fmt.Sprintf("%s/iter-%d/part-%d", taskID, iter, partition)
}

// Publish appends an announcement to the topic log and delivers it to live
// subscribers. It returns the message's sequence number.
func (ps *PubSub) Publish(topic, from string, data []byte) int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	a := Announcement{
		Seq:   ps.nexts[topic],
		Topic: topic,
		From:  from,
		Data:  append([]byte(nil), data...),
	}
	ps.nexts[topic]++
	ps.logs[topic] = append(ps.logs[topic], a)
	for _, ch := range ps.subs[topic] {
		select {
		case ch <- a:
		default: // slow subscriber: it will catch up via Fetch
		}
	}
	return a.Seq
}

// Fetch returns every announcement on topic with Seq >= since, plus the
// next cursor value. This is the polling interface used over RPC.
func (ps *PubSub) Fetch(topic string, since int) ([]Announcement, int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	next := ps.nexts[topic]
	var out []Announcement
	for _, a := range ps.logs[topic] {
		if a.Seq >= since {
			out = append(out, a)
		}
	}
	return out, next
}

// Subscription is a live in-process subscription.
type Subscription struct {
	C      <-chan Announcement
	ps     *PubSub
	topic  string
	ch     chan Announcement
	closed bool
}

// Subscribe starts streaming announcements published after this call. The
// channel is buffered; a subscriber that falls behind should resynchronize
// with Fetch.
func (ps *PubSub) Subscribe(topic string) *Subscription {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ch := make(chan Announcement, 64)
	ps.subs[topic] = append(ps.subs[topic], ch)
	return &Subscription{C: ch, ps: ps, topic: topic, ch: ch}
}

// Cancel stops the subscription and releases its channel.
func (s *Subscription) Cancel() {
	s.ps.mu.Lock()
	defer s.ps.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	subs := s.ps.subs[s.topic]
	for i, ch := range subs {
		if ch == s.ch {
			s.ps.subs[s.topic] = append(subs[:i], subs[i+1:]...)
			break
		}
	}
	close(s.ch)
}

// Forget drops a topic's retained log (used by per-iteration cleanup).
func (ps *PubSub) Forget(topic string) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	delete(ps.logs, topic)
	// The cursor survives so late Fetch calls don't replay stale data.
}

// Topics returns the number of topics with retained messages.
func (ps *PubSub) Topics() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.logs)
}
