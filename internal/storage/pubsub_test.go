package storage

import (
	"fmt"
	"testing"
)

func TestPubSubPublishFetch(t *testing.T) {
	ps := NewPubSub()
	ps.Publish("t", "a", []byte("m0"))
	ps.Publish("t", "b", []byte("m1"))
	ps.Publish("other", "c", []byte("x"))

	msgs, next := ps.Fetch("t", 0)
	if len(msgs) != 2 || next != 2 {
		t.Fatalf("got %d msgs, next=%d", len(msgs), next)
	}
	if msgs[0].From != "a" || string(msgs[1].Data) != "m1" {
		t.Fatalf("wrong messages: %+v", msgs)
	}
	// Cursor resumes where it left off.
	ps.Publish("t", "d", []byte("m2"))
	msgs, next = ps.Fetch("t", next)
	if len(msgs) != 1 || msgs[0].From != "d" || next != 3 {
		t.Fatalf("cursor resume broken: %+v next=%d", msgs, next)
	}
	// Empty fetch.
	msgs, _ = ps.Fetch("t", next)
	if len(msgs) != 0 {
		t.Fatal("expected no new messages")
	}
	// Unknown topic.
	msgs, next = ps.Fetch("nope", 0)
	if len(msgs) != 0 || next != 0 {
		t.Fatal("unknown topic should be empty")
	}
}

func TestPubSubSubscribe(t *testing.T) {
	ps := NewPubSub()
	sub := ps.Subscribe("t")
	defer sub.Cancel()
	ps.Publish("t", "a", []byte("live"))
	select {
	case msg := <-sub.C:
		if msg.From != "a" || string(msg.Data) != "live" {
			t.Fatalf("wrong message: %+v", msg)
		}
	default:
		t.Fatal("subscription did not receive the message")
	}
	// Cancelled subscriptions stop receiving; double cancel is safe.
	sub.Cancel()
	sub.Cancel()
	ps.Publish("t", "b", []byte("after"))
	if _, open := <-sub.C; open {
		t.Fatal("channel should be closed after cancel")
	}
}

func TestPubSubSlowSubscriberDoesNotBlock(t *testing.T) {
	ps := NewPubSub()
	sub := ps.Subscribe("t")
	defer sub.Cancel()
	// Overflow the buffer: Publish must not block; Fetch still has all.
	for i := 0; i < 200; i++ {
		ps.Publish("t", "a", []byte{byte(i)})
	}
	msgs, _ := ps.Fetch("t", 0)
	if len(msgs) != 200 {
		t.Fatalf("retained log lost messages: %d", len(msgs))
	}
}

func TestPubSubForget(t *testing.T) {
	ps := NewPubSub()
	ps.Publish("t", "a", []byte("x"))
	ps.Publish("t", "a", []byte("y"))
	ps.Forget("t")
	msgs, next := ps.Fetch("t", 0)
	if len(msgs) != 0 {
		t.Fatal("forgotten topic still returns messages")
	}
	// The cursor survives so sequence numbers stay monotonic.
	if next != 2 {
		t.Fatalf("cursor reset by Forget: %d", next)
	}
	seq := ps.Publish("t", "a", []byte("z"))
	if seq != 2 {
		t.Fatalf("sequence restarted after Forget: %d", seq)
	}
	if ps.Topics() != 1 {
		t.Fatalf("Topics() = %d", ps.Topics())
	}
}

func TestTopicNaming(t *testing.T) {
	if Topic("task", 3, 1) != "task/iter-3/part-1" {
		t.Fatalf("Topic() = %s", Topic("task", 3, 1))
	}
}

func TestNetworkPubSubIntegration(t *testing.T) {
	n, _ := newTestNetwork(t, 1, 1)
	n.Announce("t", "agg", []byte("record"))
	msgs, next := n.Listen("t", 0)
	if len(msgs) != 1 || next != 1 || string(msgs[0].Data) != "record" {
		t.Fatalf("network pubsub broken: %+v", msgs)
	}
	n.ForgetTopic("t")
	if msgs, _ := n.Listen("t", 0); len(msgs) != 0 {
		t.Fatal("ForgetTopic ineffective")
	}
	if n.PubSub() == nil {
		t.Fatal("PubSub() accessor nil")
	}
}

func TestPubSubDataIsolated(t *testing.T) {
	// Published payloads must be copied, not aliased.
	ps := NewPubSub()
	payload := []byte("mutable")
	ps.Publish("t", "a", payload)
	payload[0] = 'X'
	msgs, _ := ps.Fetch("t", 0)
	if string(msgs[0].Data) != "mutable" {
		t.Fatal("payload aliased caller memory")
	}
}

func TestPubSubManyTopics(t *testing.T) {
	ps := NewPubSub()
	for i := 0; i < 50; i++ {
		ps.Publish(fmt.Sprintf("topic-%d", i), "a", []byte{1})
	}
	if ps.Topics() != 50 {
		t.Fatalf("Topics() = %d", ps.Topics())
	}
	for i := 0; i < 50; i++ {
		msgs, _ := ps.Fetch(fmt.Sprintf("topic-%d", i), 0)
		if len(msgs) != 1 {
			t.Fatalf("topic %d lost its message", i)
		}
	}
}
