package storage

import (
	"context"
	"sort"
	"strconv"
	"time"

	"ipls/internal/cid"
	"ipls/internal/obs"
)

// Anti-entropy repair for the storage network. Replication gives the
// paper's availability (§VI), but a departed or crashed provider silently
// erodes the replication factor: nothing re-replicates on its own. A
// RepairScan is the maintenance pass an IPFS pinning cluster would run —
// walk the provider records, prune the stale ones, and copy every
// under-replicated block onto fresh live nodes chosen by the same
// rendezvous placement new Puts use.

// RepairReport summarizes one RepairScan.
type RepairReport struct {
	// Scanned counts the provider-indexed blocks examined.
	Scanned int
	// UnderReplicated counts blocks found below their replication target
	// (before repair).
	UnderReplicated int
	// Repaired counts replica copies created by the scan.
	Repaired int
	// Lost counts blocks with no live holder at all — unrepairable until a
	// holder recovers.
	Lost int
	// Remaining counts blocks still below target after the scan (includes
	// Lost; 0 means the replication factor is fully restored).
	Remaining int
}

// RepairScan walks every known block, withdraws provider records that
// point at departed or down nodes (stale placement), and re-replicates
// blocks whose live replica count fell below target onto live nodes
// ranked by rendezvous score. The target per block is min(replicas,
// live nodes). The scan is deterministic: blocks are visited in CID
// order and copies go to the highest-scoring non-holders.
//
// Each repaired copy increments repair_blocks_total; the closing census
// of still-under-replicated blocks is published as the
// under_replicated_blocks gauge, and the whole pass is recorded as a
// "repair" span when a span sink is installed.
func (n *Network) RepairScan(ctx context.Context) (RepairReport, error) {
	start := time.Now()
	n.mu.Lock()
	report, err := n.repairLocked(ctx)
	sink := n.spans
	seq := n.repairSeq
	n.repairSeq++
	n.mu.Unlock()
	if sink != nil {
		sp := obs.Span{
			Name:  "repair",
			Actor: "network",
			Context: obs.SpanContext{
				Session: "storage",
				Iter:    seq,
				SpanID:  obs.NewSpanID(),
			},
			Start: start,
			End:   time.Now(),
			Attrs: map[string]string{
				"scanned":          strconv.Itoa(report.Scanned),
				"under_replicated": strconv.Itoa(report.UnderReplicated),
				"repaired":         strconv.Itoa(report.Repaired),
				"lost":             strconv.Itoa(report.Lost),
			},
		}
		if err != nil {
			sp.Attrs["error"] = err.Error()
		}
		sink.EmitSpan(sp)
	}
	return report, err
}

func (n *Network) repairLocked(ctx context.Context) (RepairReport, error) {
	var report RepairReport
	live := make([]string, 0, len(n.order))
	for _, id := range n.order {
		if n.nodes[id].unavailable() {
			continue
		}
		live = append(live, id)
	}
	target := n.replicas
	if target > len(live) {
		target = len(live)
	}
	cids := make([]cid.CID, 0, len(n.providers))
	for c := range n.providers {
		cids = append(cids, c)
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })

	for _, c := range cids {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		report.Scanned++
		// Prune stale records: a provider that departed (or lost the
		// block) will never serve it again; a down or partitioned provider
		// cannot serve it now — Recover and Heal re-announce on return.
		for id := range n.providers[c] {
			nd, ok := n.nodes[id]
			if !ok || nd.unavailable() {
				n.withdrawLocked(id, c)
				continue
			}
			if holds, _ := nd.store.Has(context.Background(), c); !holds {
				n.withdrawLocked(id, c)
			}
		}
		holders := make([]string, 0, len(n.providers[c]))
		for id := range n.providers[c] {
			holders = append(holders, id)
		}
		sort.Strings(holders)
		if len(holders) >= target {
			continue
		}
		report.UnderReplicated++
		if len(holders) == 0 {
			report.Lost++
			report.Remaining++
			continue
		}
		// Copy from the first holder whose backend can actually serve the
		// block; one with a rotted or unreadable copy is skipped.
		var data []byte
		for _, id := range holders {
			src := n.nodes[id]
			d, rerr := src.store.Get(context.Background(), c)
			if rerr != nil {
				src.noteStoreErr(rerr)
				continue
			}
			data = d
			break
		}
		if data == nil {
			report.Lost++
			report.Remaining++
			continue
		}
		isHolder := make(map[string]bool, len(holders))
		for _, id := range holders {
			isHolder[id] = true
		}
		// Rank fresh destinations exactly as Put's rendezvous placement
		// would, so repaired placement matches what a re-Put would choose.
		type scored struct {
			id    string
			score uint64
		}
		cands := make([]scored, 0, len(live))
		for _, id := range live {
			if isHolder[id] {
				continue
			}
			cands = append(cands, scored{id: id, score: rendezvousScore(c, id)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].id < cands[j].id
		})
		have := len(holders)
		for _, cand := range cands {
			if have >= target {
				break
			}
			dst := n.nodes[cand.id]
			if _, perr := dst.store.Put(context.Background(), data); perr != nil {
				dst.noteStoreErr(perr)
				continue
			}
			n.announceLocked(cand.id, c)
			dst.metrics.blocksReplicated.Inc()
			n.repairCtr.Inc()
			report.Repaired++
			have++
		}
		if have < target {
			report.Remaining++
		}
	}
	n.underRepl.Set(float64(report.Remaining))
	return report, nil
}

// UnderReplicated returns the CIDs whose live replica count is below the
// network's target, in sorted order — the census a RepairScan would try
// to repair. A clean network returns an empty slice.
func (n *Network) UnderReplicated() []cid.CID {
	n.mu.Lock()
	defer n.mu.Unlock()
	liveNodes := 0
	for _, nd := range n.nodes {
		if !nd.unavailable() {
			liveNodes++
		}
	}
	target := n.replicas
	if target > liveNodes {
		target = liveNodes
	}
	var out []cid.CID
	for c := range n.providers {
		if n.liveReplicasLocked(c) < target {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
