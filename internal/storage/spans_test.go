package storage

import (
	"context"
	"testing"

	"ipls/internal/obs"
)

// TestPutGetSpansParentedUnderCaller: all three request kinds — put, get,
// merge — carry the caller's span context across the storage boundary and
// the serving node records a child span under it.
func TestPutGetSpansParentedUnderCaller(t *testing.T) {
	n, _ := newTestNetwork(t, 2, 1)
	col := obs.NewSpanCollector(0)
	n.SetSpans(col)
	parent := obs.SpanContext{Session: "span-test", Iter: 3, SpanID: obs.NewSpanID()}

	c, err := n.PutSpan(context.Background(), "node-00", []byte("traced block"), parent)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.GetSpan(context.Background(), "node-00", c, parent); err != nil {
		t.Fatal(err)
	}

	byName := map[string]obs.Span{}
	for _, sp := range col.Spans() {
		byName[sp.Name] = sp
	}
	for _, name := range []string{"put", "get"} {
		sp, ok := byName[name]
		if !ok {
			t.Fatalf("no %q span recorded", name)
		}
		if sp.Context.Parent != parent.SpanID {
			t.Fatalf("%q span not parented under caller: parent=%q want %q", name, sp.Context.Parent, parent.SpanID)
		}
		if sp.Context.Session != "span-test" || sp.Context.Iter != 3 {
			t.Fatalf("%q span lost the caller's trace identity: %+v", name, sp.Context)
		}
		if sp.Actor != "node-00" {
			t.Fatalf("%q span actor = %q", name, sp.Actor)
		}
	}

	// Without a valid parent no span is emitted: the default positional
	// paths stay span-free (and the bench-gate breakdowns unchanged).
	before := len(col.Spans())
	if _, err := n.Put(context.Background(), "node-00", []byte("untraced")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(context.Background(), "node-00", c); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Spans()); got != before {
		t.Fatalf("positional Put/Get emitted spans: %d -> %d", before, got)
	}
}
