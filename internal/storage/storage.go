// Package storage implements the decentralized content-addressed storage
// network that replaces direct peer-to-peer communication in the modified
// IPLS protocol (§III-B). It plays the role IPFS plays in the paper: blocks
// are stored and retrieved by their SHA-256 content ID, data can be
// replicated across nodes for availability (§VI), and nodes support the
// merge-and-download operation (§III-E) that pre-aggregates gradient blocks
// before shipping them to an aggregator.
//
// The network is honest-but-unreliable: nodes may fail (and recover), and a
// test hook can corrupt stored bytes, because the paper explicitly does not
// assume retrieved data is correct — parties verify CIDs themselves.
package storage

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ipls/internal/cid"
	"ipls/internal/dag"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/scalar"
)

func bigOne() *big.Int { return big.NewInt(1) }

// Errors reported by the storage network.
var (
	// ErrNotFound indicates no reachable node holds the requested block.
	ErrNotFound = errors.New("storage: block not found")
	// ErrNodeDown indicates the addressed node is unavailable.
	ErrNodeDown = errors.New("storage: node is down")
	// ErrNodeDeparted indicates the addressed node has permanently left the
	// network (its blocks are gone). Unlike ErrNodeDown this is not
	// retryable — only replica failover can serve the data.
	ErrNodeDeparted = errors.New("storage: node has departed")
	// ErrUnknownNode indicates the node ID is not part of the network.
	ErrUnknownNode = errors.New("storage: unknown node")
	// ErrPartitioned indicates the addressed node is isolated by an active
	// network partition (Partition): it is up, holds its blocks, and will
	// serve again once the split Heals — transient, like ErrNodeDown, but
	// no amount of retrying helps until the partition window closes.
	ErrPartitioned = errors.New("storage: node is partitioned away")
)

// Client is the view protocol participants have of the storage network:
// enough to upload gradients, download blocks, and request pre-aggregation.
// Every method takes a context first: cancellation and deadlines flow from
// the caller down to the serving node (and, for the TCP backend, across
// the wire).
type Client interface {
	// Put stores data on the addressed node (plus replicas) and returns
	// its content ID.
	Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error)
	// Get retrieves a block from the addressed node.
	Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error)
	// MergeGet asks the addressed node to pre-aggregate the gradient
	// blocks with the given CIDs and returns the serialized sum block.
	MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error)
}

// PutRequest addresses one block upload for the request-struct call style
// used by the resilience layer (resilience.Client.Put).
type PutRequest struct {
	// Node is the preferred primary; replicas follow the network's
	// placement policy.
	Node string
	// Data is the block payload.
	Data []byte
	// Span, when valid, parents the node-side "put" span — the same
	// causal envelope MergeRequest carries, so all three request structs
	// cross the storage boundary uniformly.
	Span obs.SpanContext
}

// GetRequest addresses one block download.
type GetRequest struct {
	// Node is the recorded holder; resilient clients fall back to other
	// replicas when it cannot serve the block.
	Node string
	// CID is the content ID the returned bytes must hash to.
	CID cid.CID
	// Span, when valid, parents the node-side "get" span.
	Span obs.SpanContext
}

// MergeRequest addresses one merge-and-download (provider-side
// pre-aggregation of the listed gradient blocks).
type MergeRequest struct {
	// Node is the provider asked to pre-aggregate.
	Node string
	// CIDs are the gradient blocks to fold.
	CIDs []cid.CID
	// Span, when valid, parents the provider-side merge span — the causal
	// envelope that crosses the storage boundary.
	Span obs.SpanContext
}

// Placement selects how replicas are assigned to nodes.
type Placement int

// Placement policies.
const (
	// PlacementRing stores replicas on the primary's successors in node
	// ID order — simple, but a fixed primary always hits the same
	// successors.
	PlacementRing Placement = iota + 1
	// PlacementRendezvous scores each node by hash(CID, node ID) and
	// stores replicas on the top scorers — the §VI proposal for a
	// "uniform allocation of gradients to nodes ... based on the hash of
	// the gradients and the nodes id's", which also makes the replica
	// set unpredictable to colluding parties.
	PlacementRendezvous
)

// StoreConfig selects the BlockStore backend the network's nodes use.
// The zero value is the in-memory backend.
type StoreConfig struct {
	// Backend is "mem" (default) or "fs".
	Backend string
	// Dir is the fs backend's root; each node stores under Dir/<node id>,
	// so one directory hosts a whole local network and a restarted node
	// reopens its own blocks.
	Dir string
	// CacheBlocks is the LRU block-cache capacity (in blocks) layered over
	// the fs backend. 0 disables the cache. Ignored for mem (the map IS
	// memory; caching it again buys nothing).
	CacheBlocks int
}

// Backend names accepted by StoreConfig.Backend and the IPLS_STORE env var.
const (
	BackendMem = "mem"
	BackendFS  = "fs"
)

// Network is a storage network of nodes, each backed by a BlockStore.
type Network struct {
	mu        sync.Mutex
	field     *scalar.Field
	replicas  int
	placement Placement
	storeCfg  StoreConfig
	nodes     map[string]*Node
	order     []string
	pubsub    *PubSub

	// providers is the advertised placement: per CID, the set of nodes
	// that have announced they hold the block (the stand-in for IPFS DHT
	// provider records). Repair reads it instead of scanning datastores,
	// and withdrawal on Depart/Delete keeps placement from going stale.
	providers map[cid.CID]map[string]bool

	reg             *obs.Registry
	remoteFetchCtr  *obs.Counter
	mergeOps        *obs.Counter
	mergeBytesSaved *obs.Counter
	repairCtr       *obs.Counter
	underRepl       *obs.Gauge
	partitionActive *obs.Gauge
	partitionHeals  *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	gcBlocks        *obs.Counter
	gcBytes         *obs.Counter

	spans obs.SpanSink
	// repairSeq numbers RepairScan passes so each scan's "repair" span
	// lands in its own (session, iter) trace.
	repairSeq int

	// faultRand drives flaky-node coin flips; seeded via SetFaultSeed so
	// fault-injection runs are reproducible.
	faultRand *rand.Rand
}

var _ Client = (*Network)(nil)

// NewNetwork creates a storage network on the in-memory backend. The field
// is needed so nodes can merge gradient blocks; replicas is the number of
// nodes each block is stored on (minimum 1).
func NewNetwork(field *scalar.Field, replicas int) *Network {
	return NewNetworkWithStore(field, replicas, StoreConfig{})
}

// NewNetworkWithStore creates a storage network whose nodes use the
// configured BlockStore backend.
func NewNetworkWithStore(field *scalar.Field, replicas int, cfg StoreConfig) *Network {
	if replicas < 1 {
		replicas = 1
	}
	n := &Network{
		field:     field,
		replicas:  replicas,
		placement: PlacementRing,
		storeCfg:  cfg,
		nodes:     make(map[string]*Node),
		providers: make(map[cid.CID]map[string]bool),
		pubsub:    NewPubSub(),
	}
	n.setMetricsLocked(nil) // private registry until SetMetrics is called
	return n
}

// SetPlacement selects the replica placement policy.
func (n *Network) SetPlacement(p Placement) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.placement = p
}

// PubSub returns the network's pub/sub bus (the IPFS pub/sub stand-in).
func (n *Network) PubSub() *PubSub { return n.pubsub }

// Announce publishes a pub/sub message (IPFS pub/sub, used by aggregators
// to announce partial-update hashes, §IV-B).
func (n *Network) Announce(topic, from string, data []byte) {
	n.pubsub.Publish(topic, from, data)
}

// Listen returns announcements on topic from the given cursor, plus the
// next cursor.
func (n *Network) Listen(topic string, since int) ([]Announcement, int) {
	return n.pubsub.Fetch(topic, since)
}

// ForgetTopic drops a topic's retained announcements.
func (n *Network) ForgetTopic(topic string) {
	n.pubsub.Forget(topic)
}

// Node is a single storage host. Its datastore is a BlockStore backend —
// the in-memory map it grew up with, or the durable on-disk CAS store.
type Node struct {
	id          string
	store       BlockStore
	down        bool
	departed    bool
	partitioned bool
	cheatMerges bool
	slow        time.Duration // fault injection: per-operation service delay
	flaky       float64       // fault injection: transient-failure probability
	metrics     nodeMetrics

	// openErr is a sticky failure from opening the configured backend
	// (the node is running on a memory fallback); backendErr is the last
	// unresolved per-operation infrastructure failure (I/O error, corrupt
	// block on disk) and a successful Put/Get clears it. Health surfaces
	// both as a distinct readiness failure.
	openErr    error
	backendErr error

	// MergeOps counts merge-and-download requests served, and
	// MergedBlocks the total number of gradient blocks folded into them.
	MergeOps     int
	MergedBlocks int
}

// ID returns the node's identifier.
func (nd *Node) ID() string { return nd.id }

// Store returns the node's BlockStore backend.
func (nd *Node) Store() BlockStore { return nd.store }

// availErr reports why the node cannot serve requests (nil when it can).
func (nd *Node) availErr() error {
	if nd.departed {
		return fmt.Errorf("%w: %q", ErrNodeDeparted, nd.id)
	}
	if nd.down {
		return fmt.Errorf("%w: %q", ErrNodeDown, nd.id)
	}
	if nd.partitioned {
		return fmt.Errorf("%w: %q", ErrPartitioned, nd.id)
	}
	return nil
}

// unavailable reports whether the node is out of service for placement
// and content routing: down, departed, or isolated by a partition.
func (nd *Node) unavailable() bool {
	return nd.down || nd.departed || nd.partitioned
}

// noteStoreErr records (or, on success, clears) the node's backend failure
// state. Only infrastructure failures count: ErrNotFound is a normal miss.
func (nd *Node) noteStoreErr(err error) {
	switch {
	case err == nil:
		nd.backendErr = nil
	case errors.Is(err, ErrBackend) || errors.Is(err, ErrIntegrity):
		nd.backendErr = err
	}
}

// StoredBlocks returns how many distinct blocks the node holds.
func (nd *Node) StoredBlocks() int {
	if l, ok := nd.store.(interface{ Len() int }); ok {
		return l.Len()
	}
	keys, err := nd.store.Keys(context.Background())
	if err != nil {
		return 0
	}
	return len(keys)
}

// BlockCIDs returns the CIDs of all blocks the node holds, in sorted order.
func (nd *Node) BlockCIDs() []cid.CID {
	keys, err := nd.store.Keys(context.Background())
	if err != nil {
		return nil
	}
	return keys
}

// StoredBytes returns the total bytes the node holds.
func (nd *Node) StoredBytes() int64 { return storeBytes(nd.store) }

// newStoreLocked builds a node's BlockStore per the network's StoreConfig.
func (n *Network) newStoreLocked(id string) (BlockStore, error) {
	switch n.storeCfg.Backend {
	case "", BackendMem:
		return NewMemStore(), nil
	case BackendFS:
		fs, err := OpenFSStore(filepath.Join(n.storeCfg.Dir, id))
		if err != nil {
			return nil, err
		}
		if n.storeCfg.CacheBlocks > 0 {
			cs := NewCachedStore(fs, n.storeCfg.CacheBlocks)
			cs.SetMetrics(n.cacheHits, n.cacheMisses)
			return cs, nil
		}
		return fs, nil
	default:
		return nil, fmt.Errorf("%w: unknown backend %q", ErrBackend, n.storeCfg.Backend)
	}
}

// AddNode registers a storage node on the network's configured backend.
// When the backend cannot be opened (e.g. unwritable -store-dir) the node
// falls back to a memory store and carries the failure as a backend error,
// so the network stays usable while Health and /readyz report the broken
// disk distinctly. A disk-backed node that reopens a non-empty directory
// re-announces every block it holds — the restart path that lets a rejoined
// node serve its pre-crash blocks without re-replication.
func (n *Network) AddNode(id string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("storage: duplicate node %q", id))
	}
	st, err := n.newStoreLocked(id)
	if err != nil {
		st = NewMemStore()
	}
	nd := &Node{id: id, store: st, openErr: err, metrics: resolveNodeMetrics(n.reg, id)}
	n.nodes[id] = nd
	n.order = append(n.order, id)
	sort.Strings(n.order)
	if keys, kerr := st.Keys(context.Background()); kerr == nil {
		for _, c := range keys {
			n.announceLocked(id, c)
		}
	}
	return nd
}

// Close closes every node's BlockStore. Disk-backed blocks survive for the
// next Open; the network must not serve requests afterwards.
func (n *Network) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	var first error
	for _, id := range n.order {
		if err := n.nodes[id].store.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// LiveNodes returns the IDs of nodes currently able to serve requests
// (not down, departed, or partitioned away), in deterministic order.
func (n *Network) LiveNodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.order))
	for _, id := range n.order {
		if n.nodes[id].unavailable() {
			continue
		}
		out = append(out, id)
	}
	return out
}

// Health reports whether the network can currently serve: nil when every
// node's backend is sound and at least `replicas` nodes are live. Backend
// failures (unwritable store directory, corrupt block on disk) are checked
// first and reported wrapped in ErrBackend — a distinct readiness failure
// from "not enough replicas live", so /readyz can tell a broken disk from
// a thin quorum. It is the "storage" component check behind the
// introspection readiness probe.
// healthBackendErr presents a node's stored backend trouble as ErrBackend
// for readiness classification, without stacking the sentinel twice when
// the error (an open failure) already carries it; integrity rot is stored
// bare and picks the sentinel up here.
func healthBackendErr(id string, err error) error {
	if errors.Is(err, ErrBackend) {
		return fmt.Errorf("node %q: %w", id, err)
	}
	return fmt.Errorf("%w: node %q: %v", ErrBackend, id, err)
}

func (n *Network) Health() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range n.order {
		nd := n.nodes[id]
		if nd.openErr != nil {
			return healthBackendErr(id, nd.openErr)
		}
		if nd.backendErr != nil {
			return healthBackendErr(id, nd.backendErr)
		}
	}
	// An active partition is a readiness failure in its own right: the
	// isolated side holds blocks the mainline cannot reach, so replica
	// guarantees do not hold until the split heals.
	if isolated := n.partitionedLocked(); len(isolated) > 0 {
		return fmt.Errorf("storage: network partitioned: %d node(s) isolated (%s)",
			len(isolated), strings.Join(isolated, ", "))
	}
	live := 0
	for _, id := range n.order {
		if !n.nodes[id].unavailable() {
			live++
		}
	}
	need := n.replicas
	if need < 1 {
		need = 1
	}
	if live < need {
		return fmt.Errorf("storage: %d/%d nodes live, need %d for replication", live, len(n.order), need)
	}
	return nil
}

// NodeIDs returns all node identifiers in deterministic order.
func (n *Network) NodeIDs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// Node looks up a node by ID.
func (n *Network) Node(id string) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	return nd, nil
}

// Fail marks a node as unavailable (transient: its blocks survive and
// Recover brings it back). Failing a departed node is an error — departure
// is permanent.
func (n *Network) Fail(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if nd.departed {
		return fmt.Errorf("%w: %q", ErrNodeDeparted, id)
	}
	nd.down = true
	return nil
}

// Recover brings a failed node back (its blocks survive, as an IPFS node's
// datastore would) and re-announces every block it holds to the provider
// sets — the IPFS re-provide step — so placement that went stale while the
// node was down (e.g. a RepairScan withdrew its records) is restored.
// Departed nodes cannot Recover; they must Rejoin, empty.
func (n *Network) Recover(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if nd.departed {
		return fmt.Errorf("%w: %q", ErrNodeDeparted, id)
	}
	nd.down = false
	keys, err := nd.store.Keys(context.Background())
	if err != nil {
		nd.noteStoreErr(err)
		return fmt.Errorf("storage: recover %q: %w", id, err)
	}
	for _, c := range keys {
		n.announceLocked(id, c)
	}
	return nil
}

// Depart permanently removes a node from service: unlike Fail, its blocks
// are lost and its provider records withdrawn — the "nodes may go offline
// at any time" case (§III-A) where the datastore leaves with the node.
// Only RepairScan re-replicating from surviving replicas restores the
// replication factor afterwards.
func (n *Network) Depart(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if nd.departed {
		return fmt.Errorf("%w: %q (already departed)", ErrNodeDeparted, id)
	}
	nd.departed = true
	nd.down = true
	keys, _ := nd.store.Keys(context.Background())
	for _, c := range keys {
		n.withdrawLocked(id, c)
		nd.store.Delete(context.Background(), c)
	}
	return nil
}

// Rejoin brings a departed node back into service with an empty datastore
// (a fresh join under the old identity). The node is immediately eligible
// as a replica target and repair destination.
func (n *Network) Rejoin(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if !nd.departed {
		return fmt.Errorf("storage: rejoin %q: node has not departed", id)
	}
	nd.departed = false
	nd.down = false
	return nil
}

// announceLocked records id as a provider of c. Callers hold n.mu.
func (n *Network) announceLocked(id string, c cid.CID) {
	set, ok := n.providers[c]
	if !ok {
		set = make(map[string]bool)
		n.providers[c] = set
	}
	set[id] = true
}

// withdrawLocked removes id's provider record for c. Callers hold n.mu.
func (n *Network) withdrawLocked(id string, c cid.CID) {
	set, ok := n.providers[c]
	if !ok {
		return
	}
	delete(set, id)
	if len(set) == 0 {
		delete(n.providers, c)
	}
}

// Providers returns the nodes currently advertising c, in sorted order
// (records may be stale until the next RepairScan prunes them).
func (n *Network) Providers(c cid.CID) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.providers[c]))
	for id := range n.providers[c] {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ReplicaCount returns how many live nodes actually hold c — the block's
// effective replication factor right now.
func (n *Network) ReplicaCount(c cid.CID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.liveReplicasLocked(c)
}

func (n *Network) liveReplicasLocked(c cid.CID) int {
	count := 0
	for _, nd := range n.nodes {
		if nd.unavailable() {
			continue
		}
		if ok, _ := nd.store.Has(context.Background(), c); ok {
			count++
		}
	}
	return count
}

// Corrupt flips a byte of the stored block on one node — a test hook for
// the "we do not assume correctness of retrieved data" adversary (§III-A).
// On the memory backend the corrupt bytes are served as-is (callers verify
// CIDs); the disk backend detects the rot on read and Get reports
// ErrIntegrity instead.
func (n *Network) Corrupt(id string, c cid.CID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	corrupter, ok := nd.store.(Corrupter)
	if !ok {
		return fmt.Errorf("%w: store on %q has no corruption hook", ErrBackend, id)
	}
	return corrupter.Corrupt(context.Background(), c)
}

// CheatMerges makes a node return subtly corrupted merge-and-download
// results — a test hook for the §IV check that the merged block's
// commitment equals the product of its constituents' commitments.
func (n *Network) CheatMerges(id string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	nd.cheatMerges = true
	return nil
}

// Delete removes a block from one node. Deleting an absent block is a
// no-op, mirroring IPFS unpinning semantics.
func (n *Network) Delete(nodeID string, c cid.CID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[nodeID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	if err := nd.store.Delete(context.Background(), c); err != nil {
		nd.noteStoreErr(err)
		return err
	}
	n.withdrawLocked(nodeID, c)
	return nil
}

// DeleteAll removes a block from every node: the per-iteration garbage
// collection that keeps the storage footprint of the protocol constant
// ("gradients and updates [are] only needed for a short period of time",
// §VI).
func (n *Network) DeleteAll(c cid.CID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, nd := range n.nodes {
		nd.store.Delete(context.Background(), c)
	}
	delete(n.providers, c)
}

// Put stores data on the addressed node and on replicas-1 successor nodes
// in ring order, returning the block's CID. Successors that are down are
// skipped; the primary must be up.
func (n *Network) Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	return n.PutSpan(ctx, nodeID, data, obs.SpanContext{})
}

// PutSpan is Put carrying the caller's span context across the storage
// boundary: with a sink installed and a valid parent, the upload is
// recorded as a node-side "put" span, like MergeGetSpan's "merge".
func (n *Network) PutSpan(ctx context.Context, nodeID string, data []byte, parent obs.SpanContext) (cid.CID, error) {
	n.mu.Lock()
	sink := n.spans
	n.mu.Unlock()
	if sink == nil || !parent.Valid() {
		return n.put(ctx, nodeID, data)
	}
	start := time.Now()
	c, err := n.put(ctx, nodeID, data)
	sp := obs.Span{
		Name:    "put",
		Actor:   nodeID,
		Context: parent.Child(),
		Start:   start,
		End:     time.Now(),
		Bytes:   int64(len(data)),
		Attrs:   map[string]string{},
	}
	if err != nil {
		sp.Attrs["error"] = err.Error()
	} else {
		sp.Attrs["cid"] = c.Short()
	}
	sink.EmitSpan(sp)
	return c, err
}

func (n *Network) put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	if err := n.gate(ctx, nodeID); err != nil {
		return "", err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[nodeID]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	if err := nd.availErr(); err != nil {
		return "", err
	}
	// One defensive copy shared by every replica's store: the memory
	// backend retains the slice (replicas share payload, as before the
	// backend split), the disk backend writes its own file from it.
	stored := append([]byte(nil), data...)
	c, err := nd.store.Put(ctx, stored)
	nd.noteStoreErr(err)
	if err != nil {
		return "", err
	}
	n.announceLocked(nodeID, c)
	nd.metrics.blocksStored.Inc()
	nd.metrics.bytesUploaded.Add(int64(len(stored)))
	if n.replicas > 1 {
		for _, id := range n.replicaTargets(nodeID, c) {
			replica := n.nodes[id]
			if _, rerr := replica.store.Put(ctx, stored); rerr != nil {
				replica.noteStoreErr(rerr)
				continue
			}
			n.announceLocked(id, c)
			replica.metrics.blocksReplicated.Inc()
		}
	}
	return c, nil
}

// replicaTargets picks replicas-1 live nodes (other than the primary)
// according to the placement policy.
func (n *Network) replicaTargets(primary string, c cid.CID) []string {
	want := n.replicas - 1
	var out []string
	switch n.placement {
	case PlacementRendezvous:
		// Highest-random-weight: score every candidate by
		// hash(CID, node) and take the top scorers.
		type scored struct {
			id    string
			score uint64
		}
		cands := make([]scored, 0, len(n.order))
		for _, id := range n.order {
			if id == primary || n.nodes[id].unavailable() {
				continue
			}
			cands = append(cands, scored{id: id, score: rendezvousScore(c, id)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].id < cands[j].id
		})
		for i := 0; i < len(cands) && i < want; i++ {
			out = append(out, cands[i].id)
		}
	default: // PlacementRing
		idx := sort.SearchStrings(n.order, primary)
		for step := 1; step < len(n.order) && len(out) < want; step++ {
			id := n.order[(idx+step)%len(n.order)]
			if n.nodes[id].unavailable() {
				continue
			}
			out = append(out, id)
		}
	}
	return out
}

// rendezvousScore hashes (CID, node ID) into a 64-bit weight.
func rendezvousScore(c cid.CID, nodeID string) uint64 {
	h := sha256.New()
	h.Write([]byte(c))
	h.Write([]byte{0})
	h.Write([]byte(nodeID))
	sum := h.Sum(nil)
	return binary.BigEndian.Uint64(sum)
}

// Get retrieves a block from the addressed node. On the memory backend the
// caller is responsible for verifying the returned bytes against the CID;
// the disk backend re-hashes on read and reports rot as ErrIntegrity.
func (n *Network) Get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error) {
	return n.GetSpan(ctx, nodeID, c, obs.SpanContext{})
}

// GetSpan is Get carrying the caller's span context across the storage
// boundary: with a sink installed and a valid parent, the download is
// recorded as a node-side "get" span.
func (n *Network) GetSpan(ctx context.Context, nodeID string, c cid.CID, parent obs.SpanContext) ([]byte, error) {
	n.mu.Lock()
	sink := n.spans
	n.mu.Unlock()
	if sink == nil || !parent.Valid() {
		return n.get(ctx, nodeID, c)
	}
	start := time.Now()
	data, err := n.get(ctx, nodeID, c)
	sp := obs.Span{
		Name:    "get",
		Actor:   nodeID,
		Context: parent.Child(),
		Start:   start,
		End:     time.Now(),
		Attrs:   map[string]string{"cid": c.Short()},
	}
	if err != nil {
		sp.Attrs["error"] = err.Error()
	} else {
		sp.Bytes = int64(len(data))
	}
	sink.EmitSpan(sp)
	return data, err
}

func (n *Network) get(ctx context.Context, nodeID string, c cid.CID) ([]byte, error) {
	if err := n.gate(ctx, nodeID); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	if err := nd.availErr(); err != nil {
		return nil, err
	}
	data, err := nd.store.Get(ctx, c)
	if err != nil {
		nd.noteStoreErr(err)
		if errors.Is(err, ErrNotFound) {
			return nil, fmt.Errorf("%w: %s on %q", ErrNotFound, c.Short(), nodeID)
		}
		return nil, err
	}
	nd.noteStoreErr(nil)
	nd.metrics.bytesDownloaded.Add(int64(len(data)))
	return data, nil
}

// Fetch retrieves a block from any live node (content routing).
func (n *Network) Fetch(ctx context.Context, c cid.CID) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	data, holder := n.fetchLocked(c)
	if holder == nil {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, c.Short())
	}
	holder.metrics.bytesDownloaded.Add(int64(len(data)))
	return append([]byte(nil), data...), nil
}

// fetchLocked finds the first live node holding c, returning the bytes and
// the node that served them (nil when no live node holds the block). A
// holder whose backend fails the read (integrity or I/O) is skipped —
// content routing falls through to the next replica.
func (n *Network) fetchLocked(c cid.CID) ([]byte, *Node) {
	for _, id := range n.order {
		nd := n.nodes[id]
		if nd.down || nd.partitioned {
			continue
		}
		if ok, _ := nd.store.Has(context.Background(), c); !ok {
			continue
		}
		data, err := nd.store.Get(context.Background(), c)
		if err != nil {
			nd.noteStoreErr(err)
			continue
		}
		return data, nd
	}
	return nil, nil
}

// SetSpans installs the sink that receives storage-side spans: merge
// operations served with a caller's span context are recorded as "merge"
// spans under it. Pass nil to disable.
func (n *Network) SetSpans(sink obs.SpanSink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.spans = sink
}

// MergeGet implements merge-and-download: the addressed node decodes the
// gradient blocks with the given CIDs, sums them in the scalar field and
// returns one aggregated block. Blocks the node does not hold locally are
// fetched from peers first (counted in remote_fetches_total).
func (n *Network) MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	return n.MergeGetSpan(ctx, nodeID, cs, obs.SpanContext{})
}

// MergeGetSpan is MergeGet carrying the caller's span context across the
// storage boundary: when a span sink is installed and the context is
// valid, the serving node records the merge as a "merge" span parented
// under the caller's span — the storage-side half of the causal trace
// linking an aggregator's download to the pre-aggregation done for it.
func (n *Network) MergeGetSpan(ctx context.Context, nodeID string, cs []cid.CID, parent obs.SpanContext) ([]byte, error) {
	n.mu.Lock()
	sink := n.spans
	n.mu.Unlock()
	if sink == nil || !parent.Valid() {
		return n.mergeGet(ctx, nodeID, cs)
	}
	start := time.Now()
	out, err := n.mergeGet(ctx, nodeID, cs)
	sp := obs.Span{
		Name:    "merge",
		Actor:   nodeID,
		Context: parent.Child(),
		Start:   start,
		End:     time.Now(),
		Attrs:   map[string]string{"blocks": strconv.Itoa(len(cs))},
	}
	if err != nil {
		sp.Attrs["error"] = err.Error()
	} else {
		sp.Bytes = int64(len(out))
	}
	sink.EmitSpan(sp)
	return out, err
}

func (n *Network) mergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	if err := n.gate(ctx, nodeID); err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	nd, ok := n.nodes[nodeID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, nodeID)
	}
	if err := nd.availErr(); err != nil {
		return nil, err
	}
	if len(cs) == 0 {
		return nil, errors.New("storage: merge of zero blocks")
	}
	blocks := make([]model.Block, 0, len(cs))
	var inputBytes int64
	for _, c := range cs {
		// A cancelled caller stops the merge between blocks: the deadline
		// that arrived with the request bounds server-side work too.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, gerr := nd.store.Get(ctx, c)
		if gerr != nil {
			nd.noteStoreErr(gerr)
			remote, holder := n.fetchLocked(c)
			if holder == nil {
				return nil, fmt.Errorf("%w: %s for merge on %q", ErrNotFound, c.Short(), nodeID)
			}
			n.remoteFetchCtr.Inc()
			if _, perr := nd.store.Put(ctx, remote); perr == nil {
				n.announceLocked(nodeID, c)
			}
			data = remote
		}
		inputBytes += int64(len(data))
		b, err := model.DecodeBlock(data)
		if err != nil {
			return nil, fmt.Errorf("storage: merge decode %s: %w", c.Short(), err)
		}
		blocks = append(blocks, b)
	}
	sum, err := model.Sum(n.field, blocks...)
	if err != nil {
		return nil, fmt.Errorf("storage: merge: %w", err)
	}
	if nd.cheatMerges {
		// A lazy or malicious provider quietly mis-aggregates.
		sum.Values[0] = n.field.Add(sum.Values[0], bigOne())
	}
	nd.MergeOps++
	nd.MergedBlocks += len(blocks)
	out, err := sum.Encode()
	if err != nil {
		return nil, err
	}
	nd.metrics.bytesDownloaded.Add(int64(len(out)))
	n.mergeOps.Inc()
	if saved := inputBytes - int64(len(out)); saved > 0 {
		n.mergeBytesSaved.Add(saved)
	}
	return out, nil
}

// PutDAG chunks a large object into a Merkle DAG and stores every block on
// the addressed node (with the network's replication policy applied per
// block). It returns the root reference. chunkSize <= 0 uses the IPFS
// default of 256 KiB.
func (n *Network) PutDAG(ctx context.Context, nodeID string, data []byte, chunkSize int) (dag.Ref, error) {
	root, blocks, err := dag.Build(data, chunkSize)
	if err != nil {
		return dag.Ref{}, err
	}
	// Store in deterministic order so replica placement is reproducible.
	ids := make([]cid.CID, 0, len(blocks))
	for c := range blocks {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, c := range ids {
		stored, err := n.Put(ctx, nodeID, blocks[c])
		if err != nil {
			return dag.Ref{}, err
		}
		if stored != c {
			return dag.Ref{}, fmt.Errorf("storage: DAG block CID drifted: %s != %s", stored.Short(), c.Short())
		}
	}
	return root, nil
}

// GetDAG reassembles an object from its root reference, fetching blocks
// from the addressed node with content-routing fallback and verifying
// every block against its CID.
func (n *Network) GetDAG(ctx context.Context, nodeID string, root dag.Ref) ([]byte, error) {
	return dag.Assemble(root, func(c cid.CID) ([]byte, error) {
		data, err := n.Get(ctx, nodeID, c)
		if err != nil {
			return n.Fetch(ctx, c)
		}
		return data, nil
	})
}

// TotalStoredBytes sums stored bytes across all nodes (replicas included),
// used by the blockchain-baseline comparison.
func (n *Network) TotalStoredBytes() int64 {
	n.mu.Lock()
	nodes := make([]*Node, 0, len(n.order))
	for _, id := range n.order {
		nodes = append(nodes, n.nodes[id])
	}
	n.mu.Unlock()
	var total int64
	for _, nd := range nodes {
		total += nd.StoredBytes()
	}
	return total
}
