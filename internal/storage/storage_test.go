package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/group"
	"ipls/internal/model"
	"ipls/internal/scalar"
)

// testBackend returns the BlockStore backend under test, selected by the
// IPLS_STORE env var ("mem", the default, or "fs") so the whole suite runs
// against both implementations in CI.
func testBackend() string {
	if b := os.Getenv("IPLS_STORE"); b != "" {
		return b
	}
	return BackendMem
}

// testStoreConfig builds a StoreConfig for the selected backend, rooting
// the fs backend in a per-test temp dir (cleaned up by the test runner,
// race mode included).
func testStoreConfig(t *testing.T) StoreConfig {
	t.Helper()
	cfg := StoreConfig{Backend: testBackend()}
	if cfg.Backend == BackendFS {
		cfg.Dir = t.TempDir()
		cfg.CacheBlocks = 8
	}
	return cfg
}

func newTestNetwork(t *testing.T, nodes, replicas int) (*Network, *scalar.Quantizer) {
	t.Helper()
	f := scalar.NewField(group.Secp256k1().N)
	q, err := scalar.NewQuantizer(f, scalar.DefaultShift)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetworkWithStore(f, replicas, testStoreConfig(t))
	t.Cleanup(func() { n.Close() })
	for i := 0; i < nodes; i++ {
		n.AddNode(fmt.Sprintf("node-%02d", i))
	}
	return n, q
}

func TestPutGetRoundTrip(t *testing.T) {
	n, _ := newTestNetwork(t, 3, 1)
	data := []byte("gradient bytes")
	c, err := n.Put(context.Background(), "node-00", data)
	if err != nil {
		t.Fatal(err)
	}
	if !cid.Verify(data, c) {
		t.Fatal("returned CID does not match data")
	}
	got, err := n.Get(context.Background(), "node-00", c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("data mismatch")
	}
	// Unreplicated: other nodes do not hold the block.
	if _, err := n.Get(context.Background(), "node-01", c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound from non-holder, got %v", err)
	}
}

func TestReplicationAndFetch(t *testing.T) {
	n, _ := newTestNetwork(t, 4, 2)
	data := []byte("replicated block")
	c, err := n.Put(context.Background(), "node-01", data)
	if err != nil {
		t.Fatal(err)
	}
	// Ring successor node-02 should also hold it.
	if _, err := n.Get(context.Background(), "node-02", c); err != nil {
		t.Fatalf("replica missing: %v", err)
	}
	// Primary fails; content routing still finds the replica.
	if err := n.Fail("node-01"); err != nil {
		t.Fatal(err)
	}
	got, err := n.Fetch(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("fetched data mismatch")
	}
}

func TestReplicationSkipsDownNodes(t *testing.T) {
	n, _ := newTestNetwork(t, 4, 2)
	if err := n.Fail("node-02"); err != nil {
		t.Fatal(err)
	}
	c, err := n.Put(context.Background(), "node-01", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Replica skipped the down node and landed on node-03.
	if _, err := n.Get(context.Background(), "node-03", c); err != nil {
		t.Fatalf("replica should be on node-03: %v", err)
	}
}

func TestFailRecover(t *testing.T) {
	n, _ := newTestNetwork(t, 2, 1)
	c, err := n.Put(context.Background(), "node-00", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Fail("node-00"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(context.Background(), "node-00", c); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("expected ErrNodeDown, got %v", err)
	}
	if _, err := n.Put(context.Background(), "node-00", []byte("z")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("expected ErrNodeDown on put, got %v", err)
	}
	if _, err := n.Fetch(context.Background(), c); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound when sole holder is down, got %v", err)
	}
	if err := n.Recover("node-00"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get(context.Background(), "node-00", c); err != nil {
		t.Fatalf("node should serve blocks after recovery: %v", err)
	}
}

func TestMergeGetEqualsSequentialSum(t *testing.T) {
	// Merge-and-download must be indistinguishable (in content) from
	// downloading every gradient and summing locally (§III-E).
	n, q := newTestNetwork(t, 2, 1)
	f := q.Field()
	rng := rand.New(rand.NewSource(1))
	const trainers = 8
	const dim = 12
	var cids []cid.CID
	var blocks []model.Block
	for i := 0; i < trainers; i++ {
		part := make([]float64, dim)
		for j := range part {
			part[j] = rng.NormFloat64()
		}
		b, err := model.Quantize(q, part)
		if err != nil {
			t.Fatal(err)
		}
		data, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		c, err := n.Put(context.Background(), "node-00", data)
		if err != nil {
			t.Fatal(err)
		}
		cids = append(cids, c)
		blocks = append(blocks, b)
	}
	merged, err := n.MergeGet(context.Background(), "node-00", cids)
	if err != nil {
		t.Fatal(err)
	}
	mergedBlock, err := model.DecodeBlock(merged)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Sum(f, blocks...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Values {
		if mergedBlock.Values[i].Cmp(want.Values[i]) != 0 {
			t.Fatalf("merged element %d differs from local sum", i)
		}
	}
	nd, _ := n.Node("node-00")
	if nd.MergeOps != 1 || nd.MergedBlocks != trainers {
		t.Fatalf("merge accounting wrong: ops=%d blocks=%d", nd.MergeOps, nd.MergedBlocks)
	}
}

func TestMergeGetFetchesMissingFromPeers(t *testing.T) {
	n, q := newTestNetwork(t, 2, 1)
	b1, _ := model.Quantize(q, []float64{1, 2})
	b2, _ := model.Quantize(q, []float64{3, 4})
	d1, _ := b1.Encode()
	d2, _ := b2.Encode()
	c1, err := n.Put(context.Background(), "node-00", d1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := n.Put(context.Background(), "node-01", d2) // lives on the other node
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MergeGet(context.Background(), "node-00", []cid.CID{c1, c2}); err != nil {
		t.Fatal(err)
	}
	if got := n.Metrics().Counter("remote_fetches_total").Value(); got != 1 {
		t.Fatalf("expected 1 remote fetch, got %d", got)
	}
}

func TestMergeGetErrors(t *testing.T) {
	n, q := newTestNetwork(t, 2, 1)
	if _, err := n.MergeGet(context.Background(), "node-00", nil); err == nil {
		t.Fatal("expected error for empty merge")
	}
	if _, err := n.MergeGet(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("expected ErrUnknownNode, got %v", err)
	}
	missing := cid.Sum([]byte("missing"))
	if _, err := n.MergeGet(context.Background(), "node-00", []cid.CID{missing}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	// Non-block data cannot be merged.
	c, err := n.Put(context.Background(), "node-00", []byte("not a block"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.MergeGet(context.Background(), "node-00", []cid.CID{c}); err == nil {
		t.Fatal("expected decode error merging garbage")
	}
	// Mismatched dimensions cannot be merged.
	b1, _ := model.Quantize(q, []float64{1})
	b2, _ := model.Quantize(q, []float64{1, 2})
	d1, _ := b1.Encode()
	d2, _ := b2.Encode()
	c1, _ := n.Put(context.Background(), "node-00", d1)
	c2, _ := n.Put(context.Background(), "node-00", d2)
	if _, err := n.MergeGet(context.Background(), "node-00", []cid.CID{c1, c2}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestCorruptDetectableByCID(t *testing.T) {
	n, _ := newTestNetwork(t, 1, 1)
	data := []byte("authentic gradient data")
	c, err := n.Put(context.Background(), "node-00", data)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Corrupt("node-00", c); err != nil {
		t.Fatal(err)
	}
	got, err := n.Get(context.Background(), "node-00", c)
	if testBackend() == BackendFS {
		// The disk backend re-hashes on read: local rot is an
		// infrastructure failure it reports itself.
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("fs backend should surface ErrIntegrity, got %v", err)
		}
		return
	}
	// The memory backend serves corrupt bytes as-is — the paper's §III-A
	// adversary model, where readers verify CIDs themselves.
	if err != nil {
		t.Fatal(err)
	}
	if cid.Verify(got, c) {
		t.Fatal("corrupted data should fail CID verification")
	}
}

func TestUnknownNodeErrors(t *testing.T) {
	n, _ := newTestNetwork(t, 1, 1)
	if _, err := n.Put(context.Background(), "ghost", []byte("x")); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("Put should reject unknown node")
	}
	if _, err := n.Get(context.Background(), "ghost", cid.Sum([]byte("x"))); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("Get should reject unknown node")
	}
	if err := n.Fail("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("Fail should reject unknown node")
	}
	if err := n.Recover("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("Recover should reject unknown node")
	}
	if err := n.Corrupt("ghost", cid.Sum([]byte("x"))); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("Corrupt should reject unknown node")
	}
	if _, err := n.Node("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatal("Node should reject unknown node")
	}
}

func TestAccounting(t *testing.T) {
	n, _ := newTestNetwork(t, 2, 2)
	data := []byte("0123456789")
	if _, err := n.Put(context.Background(), "node-00", data); err != nil {
		t.Fatal(err)
	}
	// Two replicas of 10 bytes.
	if got := n.TotalStoredBytes(); got != 20 {
		t.Fatalf("TotalStoredBytes = %d, want 20", got)
	}
	nd, _ := n.Node("node-00")
	if nd.StoredBlocks() != 1 || nd.StoredBytes() != 10 {
		t.Fatalf("node accounting wrong: blocks=%d bytes=%d", nd.StoredBlocks(), nd.StoredBytes())
	}
	if nd.ID() != "node-00" {
		t.Fatal("ID mismatch")
	}
	ids := n.NodeIDs()
	if len(ids) != 2 || ids[0] != "node-00" || ids[1] != "node-01" {
		t.Fatalf("NodeIDs = %v", ids)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	n, _ := newTestNetwork(t, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	n.AddNode("node-00")
}
