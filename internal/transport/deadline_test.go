package transport

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/core"
	"ipls/internal/model"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

func mergeFixture(t *testing.T) (*storage.Network, []cid.CID) {
	t.Helper()
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "deadline", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 1)
	netw.AddNode("s0")
	var cids []cid.CID
	for i := 0; i < 4; i++ {
		block := model.Block{Values: []*big.Int{big.NewInt(int64(i + 1)), big.NewInt(1)}}
		data, err := block.Encode()
		if err != nil {
			t.Fatal(err)
		}
		c, err := netw.Put(context.Background(), "s0", data)
		if err != nil {
			t.Fatal(err)
		}
		cids = append(cids, c)
	}
	return netw, cids
}

// The client's context deadline crosses the wire and cancels the merge on
// the server: the handler, invoked exactly as net/rpc would invoke it,
// reports deadline_exceeded instead of running the slow merge to the end.
func TestDeadlineCancelsServerSideMerge(t *testing.T) {
	netw, cids := mergeFixture(t)
	// Serving the merge takes 60ms on the slow node — more than the 15ms
	// the caller is willing to wait, so the deadline that rode the wire
	// must cancel the work server-side.
	if err := netw.Slow("s0", 60*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	svc := &StorageService{net: netw, obs: &serverObs{}}

	ids := make([]string, len(cids))
	for i, c := range cids {
		ids[i] = string(c)
	}
	args := &MergeArgs{Node: "s0", CIDs: ids, Deadline: time.Now().Add(15 * time.Millisecond).UnixNano()}
	var reply GetReply
	start := time.Now()
	if err := svc.MergeGet(args, &reply); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("server kept merging for %v after the deadline", elapsed)
	}
	if err := decodeErr(reply.Err); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("server-side merge error = %v, want deadline exceeded", err)
	}

	// An already-expired deadline fails without serving any block.
	args = &MergeArgs{Node: "s0", CIDs: ids, Deadline: time.Now().Add(-time.Second).UnixNano()}
	reply = GetReply{}
	if err := svc.MergeGet(args, &reply); err != nil {
		t.Fatal(err)
	}
	if err := decodeErr(reply.Err); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline merge error = %v, want deadline exceeded", err)
	}
}

// End to end over TCP: the client call returns promptly with the context
// error instead of blocking for the full server-side merge.
func TestClientDeadlineOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "deadline-tcp", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, netw, _ := startServer(t, cfg)
	c := dialClient(t, addr)

	id, err := c.Put(context.Background(), "s0", []byte("block"))
	if err != nil {
		t.Fatal(err)
	}
	if err := netw.Slow("s0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Get(ctx, "s0", id)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get over TCP = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client blocked %v despite a 30ms deadline", elapsed)
	}

	// A cancelled context fails before any network round trip.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := c.Get(done, "s0", id); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get with cancelled ctx = %v, want canceled", err)
	}
}
