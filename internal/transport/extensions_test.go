package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/storage"
)

func TestPublishBatchOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-batch", ModelDim: 8, Partitions: 2,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, dir := startServer(t, cfg)
	c := dialClient(t, addr)
	id1, _ := c.Put(context.Background(), "s0", []byte("a"))
	id2, _ := c.Put(context.Background(), "s0", []byte("b"))
	err = c.PublishBatch(context.Background(), []directory.Record{
		{Addr: directory.Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: directory.TypeGradient}, CID: id1, Node: "s0"},
		{Addr: directory.Addr{Uploader: "t0", Partition: 1, Iter: 0, Type: directory.TypeGradient}, CID: id2, Node: "s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dir.Stats().Requests != 1 || dir.Stats().Publishes != 2 {
		t.Fatalf("stats = %+v", dir.Stats())
	}
	recs := c.RecordsForIter(0)
	if len(recs) != 2 {
		t.Fatalf("RecordsForIter over TCP returned %d records", len(recs))
	}
}

func TestScheduleOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-sched", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, dir := startServer(t, cfg)
	c := dialClient(t, addr)
	base := time.Now()
	dir.SetClock(func() time.Time { return base })
	c.SetSchedule(7, base.Add(-time.Minute))
	id, _ := c.Put(context.Background(), "s0", []byte("late gradient"))
	err = c.Publish(context.Background(), directory.Record{
		Addr: directory.Addr{Uploader: "t0", Partition: 0, Iter: 7, Type: directory.TypeGradient},
		CID:  id, Node: "s0",
	})
	if !errors.Is(err, directory.ErrTooLate) {
		t.Fatalf("ErrTooLate lost over TCP: %v", err)
	}
}

func TestCleanupOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-gc", ModelDim: 16, Partitions: 2,
		Trainers: []string{"t0", "t1"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0", "s1"},
		TTrain:       2 * time.Second, TSync: 2 * time.Second,
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, netw, _ := startServer(t, cfg)
	client := dialClient(t, addr)
	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		t.Fatal(err)
	}
	deltas := map[string][]float64{"t0": make([]float64, 16), "t1": make([]float64, 16)}
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
	before := netw.TotalStoredBytes()
	removed, err := sess.CleanupIteration(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || netw.TotalStoredBytes() >= before {
		t.Fatalf("cleanup over TCP ineffective: removed=%d, %d -> %d bytes",
			removed, before, netw.TotalStoredBytes())
	}
	// Updates still retrievable.
	if _, err := sess.TrainerCollect(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
}

func TestPubSubOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-pubsub", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, netw, _ := startServer(t, cfg)
	c := dialClient(t, addr)
	c.Announce("topic", "agg-a", []byte("hash announcement"))
	msgs, next := c.Listen("topic", 0)
	if len(msgs) != 1 || next != 1 {
		t.Fatalf("Listen over TCP: %d msgs next=%d", len(msgs), next)
	}
	if msgs[0].From != "agg-a" || string(msgs[0].Data) != "hash announcement" {
		t.Fatalf("wrong announcement: %+v", msgs[0])
	}
	c.ForgetTopic("topic")
	if got, _ := netw.Listen("topic", 0); len(got) != 0 {
		t.Fatal("ForgetTopic over TCP ineffective")
	}
	// The TCP client satisfies the Announcer capability used by core.
	var _ core.Announcer = c
}

func TestConcurrentClientsStress(t *testing.T) {
	// Many clients hammering the same server concurrently: the RPC layer
	// and the underlying services must stay consistent.
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-stress", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0", "s1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, netw, _ := startServer(t, cfg)
	const clients = 8
	const putsEach = 25
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < putsEach; j++ {
				data := []byte{byte(i), byte(j), 0xaa}
				id, err := c.Put(context.Background(), "s0", data)
				if err != nil {
					errs <- err
					return
				}
				got, err := c.Get(context.Background(), "s0", id)
				if err != nil || string(got) != string(data) {
					errs <- err
					return
				}
				c.Announce("stress", "c", data)
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	nd, err := netw.Node("s0")
	if err != nil {
		t.Fatal(err)
	}
	if nd.StoredBlocks() != clients*putsEach {
		t.Fatalf("stored %d blocks, want %d", nd.StoredBlocks(), clients*putsEach)
	}
	if msgs, _ := netw.Listen("stress", 0); len(msgs) != clients*putsEach {
		t.Fatalf("retained %d announcements, want %d", len(msgs), clients*putsEach)
	}
}

func TestStorageDeleteAllOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-del", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0", "s1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, cfg)
	c := dialClient(t, addr)
	id, err := c.Put(context.Background(), "s0", []byte("ephemeral"))
	if err != nil {
		t.Fatal(err)
	}
	c.DeleteAll(id)
	if _, err := c.Fetch(context.Background(), id); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("block should be gone everywhere: %v", err)
	}
}
