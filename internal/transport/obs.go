package transport

import (
	"sync"
	"time"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/obs"
)

// serverObs is the instrumentation shared by a server's RPC services. The
// registry and tracer can be swapped at runtime (SetMetrics/SetTracer), so
// access is guarded; a zero serverObs discards everything.
type serverObs struct {
	mu     sync.RWMutex
	reg    *obs.Registry
	tracer core.Tracer
}

// count bumps rpc_requests_total{method=...} for one served call.
func (o *serverObs) count(method string) {
	o.mu.RLock()
	reg := o.reg
	o.mu.RUnlock()
	reg.Counter("rpc_requests_total", "method", method).Inc()
}

// emit forwards a synthesized protocol event to the tracer, if any.
func (o *serverObs) emit(e core.Event) {
	o.mu.RLock()
	t := o.tracer
	o.mu.RUnlock()
	if t != nil {
		t.Emit(e)
	}
}

// eventForRecord maps a published directory record to the protocol event it
// witnesses, so a serve-mode daemon has a live /events feed without the
// remote sessions shipping their traces home.
func eventForRecord(rec directory.Record) (core.EventKind, bool) {
	switch rec.Addr.Type {
	case directory.TypeGradient:
		return core.EventGradientUploaded, true
	case directory.TypePartialUpdate:
		return core.EventPartialPublished, true
	case directory.TypeUpdate:
		return core.EventGlobalPublished, true
	default:
		return 0, false
	}
}

// recordPublished synthesizes the trace event for one accepted record.
func (o *serverObs) recordPublished(rec directory.Record) {
	kind, ok := eventForRecord(rec)
	if !ok {
		return
	}
	o.emit(core.Event{
		Time:      time.Now(),
		Kind:      kind,
		Actor:     rec.Addr.Uploader,
		Iter:      rec.Addr.Iter,
		Partition: rec.Addr.Partition,
		Detail:    "cid " + rec.CID.Short() + " on " + rec.Node + " (rpc)",
	})
}

// SetMetrics points the server's RPC instrumentation (request counters) at
// a registry; nil detaches. Storage byte counters live on the storage
// network itself (storage.Network.SetMetrics).
func (s *Server) SetMetrics(reg *obs.Registry) {
	s.obs.mu.Lock()
	s.obs.reg = reg
	s.obs.mu.Unlock()
}

// SetTracer attaches a tracer that receives protocol events synthesized
// from directory publishes (gradient/partial/global); nil detaches.
func (s *Server) SetTracer(t core.Tracer) {
	s.obs.mu.Lock()
	s.obs.tracer = t
	s.obs.mu.Unlock()
}

// clientMetrics are the client's wire-level byte counters, labelled with
// the storage node addressed (content-routed fetches use node="*").
type clientMetrics struct {
	mu  sync.RWMutex
	reg *obs.Registry
}

func (m *clientMetrics) registry() *obs.Registry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.reg
}

func (m *clientMetrics) uploaded(node string, n int) {
	m.registry().Counter("bytes_uploaded_total", "node", node).Add(int64(n))
}

func (m *clientMetrics) downloaded(node string, n int) {
	m.registry().Counter("bytes_downloaded_total", "node", node).Add(int64(n))
}

// SetMetrics points the client's byte accounting at a registry; nil
// detaches. The counters use the canonical names
// (bytes_uploaded_total{node=...} / bytes_downloaded_total{node=...}), so a
// trainer or aggregator process exposes the same families a simulated run
// records.
func (c *Client) SetMetrics(reg *obs.Registry) {
	c.metrics.mu.Lock()
	c.metrics.reg = reg
	c.metrics.mu.Unlock()
}
