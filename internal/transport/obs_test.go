package transport

import (
	"context"
	"testing"

	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/obs"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

func TestServerAndClientObservability(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-obs", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0", "s1"},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Like startServer, but keeping a handle on the Server for SetMetrics.
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 1)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	dir := directory.New(nil, netw)
	cfg.ApplyAssignments(dir)

	srv := NewServer()
	if err := srv.RegisterStorage(netw); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		t.Fatal(err)
	}
	serverReg := obs.NewRegistry()
	rec := core.NewRecorder(16)
	srv.SetMetrics(serverReg)
	srv.SetTracer(rec)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c := dialClient(t, addr)
	clientReg := obs.NewRegistry()
	c.SetMetrics(clientReg)

	data := []byte("observable gradient block")
	id, err := c.Put(context.Background(), "s0", data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(context.Background(), "s0", id); err != nil {
		t.Fatal(err)
	}
	if err := c.Publish(context.Background(), directory.Record{
		Addr: directory.Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: directory.TypeGradient},
		CID:  id,
		Node: "s0",
	}); err != nil {
		t.Fatal(err)
	}

	if got := serverReg.Counter("rpc_requests_total", "method", "Storage.Put").Value(); got != 1 {
		t.Fatalf("rpc_requests_total{Storage.Put} = %d, want 1", got)
	}
	if got := serverReg.Counter("rpc_requests_total", "method", "Directory.Publish").Value(); got != 1 {
		t.Fatalf("rpc_requests_total{Directory.Publish} = %d, want 1", got)
	}
	if got := clientReg.Counter("bytes_uploaded_total", "node", "s0").Value(); got != int64(len(data)) {
		t.Fatalf("client bytes_uploaded_total = %d, want %d", got, len(data))
	}
	if got := clientReg.Counter("bytes_downloaded_total", "node", "s0").Value(); got != int64(len(data)) {
		t.Fatalf("client bytes_downloaded_total = %d, want %d", got, len(data))
	}
	// The accepted gradient publish must surface as a synthesized event.
	if n := rec.Count(core.EventGradientUploaded); n != 1 {
		t.Fatalf("synthesized gradient-uploaded events = %d, want 1", n)
	}
	events := rec.Events()
	if len(events) != 1 || events[0].Actor != "t0" {
		t.Fatalf("events = %+v", events)
	}
}

func TestUninstrumentedServerAndClientAreNoOps(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-noobs", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, cfg)
	c := dialClient(t, addr)
	if _, err := c.Put(context.Background(), "s0", []byte("no registry attached")); err != nil {
		t.Fatal(err)
	}
}
