package transport

import (
	"context"
	"testing"

	"ipls/internal/cid"
	"ipls/internal/core"
	"ipls/internal/model"
	"ipls/internal/obs"
	"ipls/internal/scalar"
)

// TestMergeSpanPropagatesOverTCP verifies the cross-node half of causal
// tracing: a span context handed to the client's merge-and-download call
// crosses the RPC boundary and the storage node's "merge" span comes back
// parented under it, so merged per-node trace files reconstruct one tree.
func TestMergeSpanPropagatesOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-span", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, netw, _ := startServer(t, cfg)
	col := obs.NewSpanCollector(0)
	netw.SetSpans(col)
	c := dialClient(t, addr)

	// Two quantized gradient blocks the node can merge in-field.
	field := scalar.NewField(cfg.Curve.N)
	quant, err := scalar.NewQuantizer(field, scalar.DefaultShift)
	if err != nil {
		t.Fatal(err)
	}
	var cids []cid.CID
	for _, v := range [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}} {
		b, err := model.Quantize(quant, v)
		if err != nil {
			t.Fatal(err)
		}
		data, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.Put(context.Background(), "s0", data)
		if err != nil {
			t.Fatal(err)
		}
		cids = append(cids, id)
	}

	parent := obs.SpanContext{Session: "tcp-span", Iter: 4, SpanID: obs.NewSpanID()}
	out, err := c.MergeGetSpan(context.Background(), "s0", cids, parent)
	if err != nil {
		t.Fatal(err)
	}

	spans := col.Spans()
	if len(spans) != 1 {
		t.Fatalf("server emitted %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "merge" || sp.Actor != "s0" {
		t.Fatalf("span = %s[%s]", sp.Name, sp.Actor)
	}
	if sp.Context.Session != "tcp-span" || sp.Context.Iter != 4 {
		t.Fatalf("trace identity lost over RPC: %+v", sp.Context)
	}
	if sp.Context.Parent != parent.SpanID {
		t.Fatalf("merge span parent = %q, want caller's %q", sp.Context.Parent, parent.SpanID)
	}
	if sp.Bytes != int64(len(out)) {
		t.Fatalf("span bytes = %d, want %d", sp.Bytes, len(out))
	}
	if sp.Attrs["blocks"] != "2" {
		t.Fatalf("span attrs = %v", sp.Attrs)
	}

	// The client-side tree reconstructs: the server's span is a child of
	// the caller's context even though they never shared a process.
	caller := obs.Span{Name: "merge_download", Context: parent, Start: sp.Start, End: sp.End}
	tree := obs.BuildTree(append(spans, caller), "tcp-span", 4)
	if tree.Orphans != 0 || len(tree.Roots) != 1 {
		t.Fatalf("cross-process tree: roots=%d orphans=%d", len(tree.Roots), tree.Orphans)
	}
	if len(tree.Roots[0].Children) != 1 || tree.Roots[0].Children[0].Span.Name != "merge" {
		t.Fatal("merge span not attached under the caller's span")
	}

	// Plain MergeGet (no context) must not record a span.
	if _, err := c.MergeGet(context.Background(), "s0", cids); err != nil {
		t.Fatal(err)
	}
	if got := len(col.Spans()); got != 1 {
		t.Fatalf("untraced merge emitted a span: %d total", got)
	}
}
