// Package transport exposes the storage network and the directory service
// over TCP using net/rpc, so that trainers, aggregators and the
// bootstrapper can run as separate processes on separate machines. The
// clients implement the same interfaces the in-memory backends do
// (storage.Client and core.Directory), so the protocol engine is oblivious
// to which deployment it runs on.
//
// Canonical protocol errors (not-found, verification-failed, …) are mapped
// to stable wire codes and back, so errors.Is works across the network.
package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"time"

	"ipls/internal/cid"
	"ipls/internal/directory"
	"ipls/internal/obs"
	"ipls/internal/pedersen"
	"ipls/internal/storage"
)

// Wire error codes.
const (
	codeNone               = ""
	codeNotFound           = "not_found"
	codeNodeDown           = "node_down"
	codeUnknownNode        = "unknown_node"
	codeDirNotFound        = "dir_not_found"
	codeConflict           = "conflict"
	codeAlreadyFinal       = "already_final"
	codeVerificationFailed = "verification_failed"
	codeMissingCommitment  = "missing_commitment"
	codeTooLate            = "too_late"
	codeTooEarly           = "too_early"
	codeBadSignature       = "bad_signature"
	codeDeadlineExceeded   = "deadline_exceeded"
	codeCanceled           = "canceled"
	codeOther              = "other:"
)

// encodeErr maps an error to a wire code.
func encodeErr(err error) string {
	switch {
	case err == nil:
		return codeNone
	case errors.Is(err, storage.ErrNotFound):
		return codeNotFound
	case errors.Is(err, storage.ErrNodeDown):
		return codeNodeDown
	case errors.Is(err, storage.ErrUnknownNode):
		return codeUnknownNode
	case errors.Is(err, directory.ErrNotFound):
		return codeDirNotFound
	case errors.Is(err, directory.ErrConflict):
		return codeConflict
	case errors.Is(err, directory.ErrAlreadyFinal):
		return codeAlreadyFinal
	case errors.Is(err, directory.ErrVerificationFailed):
		return codeVerificationFailed
	case errors.Is(err, directory.ErrMissingCommitment):
		return codeMissingCommitment
	case errors.Is(err, directory.ErrTooLate):
		return codeTooLate
	case errors.Is(err, directory.ErrTooEarly):
		return codeTooEarly
	case errors.Is(err, directory.ErrBadSignature):
		return codeBadSignature
	case errors.Is(err, context.DeadlineExceeded):
		return codeDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return codeCanceled
	default:
		return codeOther + err.Error()
	}
}

// decodeErr maps a wire code back to a canonical error.
func decodeErr(code string) error {
	switch code {
	case codeNone:
		return nil
	case codeNotFound:
		return storage.ErrNotFound
	case codeNodeDown:
		return storage.ErrNodeDown
	case codeUnknownNode:
		return storage.ErrUnknownNode
	case codeDirNotFound:
		return directory.ErrNotFound
	case codeConflict:
		return directory.ErrConflict
	case codeAlreadyFinal:
		return directory.ErrAlreadyFinal
	case codeVerificationFailed:
		return directory.ErrVerificationFailed
	case codeMissingCommitment:
		return directory.ErrMissingCommitment
	case codeTooLate:
		return directory.ErrTooLate
	case codeTooEarly:
		return directory.ErrTooEarly
	case codeBadSignature:
		return directory.ErrBadSignature
	case codeDeadlineExceeded:
		return context.DeadlineExceeded
	case codeCanceled:
		return context.Canceled
	default:
		return errors.New(strings.TrimPrefix(code, codeOther))
	}
}

// --- Storage RPC service -------------------------------------------------

// StorageService exposes a storage.Network over RPC.
type StorageService struct {
	net *storage.Network
	obs *serverObs
}

// PutArgs/PutReply carry StorageService.Put.
type (
	PutArgs struct {
		Node string
		Data []byte
		// Deadline is the caller's context deadline in UnixNano (0 = none);
		// the server resumes it so cancellation crosses the wire.
		Deadline int64
	}
	PutReply struct {
		CID string
		Err string
	}
)

// Put stores a block.
func (s *StorageService) Put(args *PutArgs, reply *PutReply) error {
	s.obs.count("Storage.Put")
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	c, err := s.net.Put(ctx, args.Node, args.Data)
	reply.CID = string(c)
	reply.Err = encodeErr(err)
	return nil
}

// GetArgs/GetReply carry StorageService.Get and Fetch.
type (
	GetArgs struct {
		Node     string
		CID      string
		Deadline int64
	}
	GetReply struct {
		Data []byte
		Err  string
	}
)

// Get retrieves a block from a specific node.
func (s *StorageService) Get(args *GetArgs, reply *GetReply) error {
	s.obs.count("Storage.Get")
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	data, err := s.net.Get(ctx, args.Node, cid.CID(args.CID))
	reply.Data = data
	reply.Err = encodeErr(err)
	return nil
}

// Fetch retrieves a block from any live node (content routing).
func (s *StorageService) Fetch(args *GetArgs, reply *GetReply) error {
	s.obs.count("Storage.Fetch")
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	data, err := s.net.Fetch(ctx, cid.CID(args.CID))
	reply.Data = data
	reply.Err = encodeErr(err)
	return nil
}

// MergeArgs carries StorageService.MergeGet. Span is the caller's span
// context — the causal envelope that lets the storage node parent its
// merge span under the aggregator's download span across the process
// boundary. The zero value means "untraced".
type MergeArgs struct {
	Node     string
	CIDs     []string
	Span     obs.SpanContext
	Deadline int64
}

// MergeGet performs merge-and-download on the addressed node.
func (s *StorageService) MergeGet(args *MergeArgs, reply *GetReply) error {
	s.obs.count("Storage.MergeGet")
	cids := make([]cid.CID, len(args.CIDs))
	for i, c := range args.CIDs {
		cids[i] = cid.CID(c)
	}
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	data, err := s.net.MergeGetSpan(ctx, args.Node, cids, args.Span)
	reply.Data = data
	reply.Err = encodeErr(err)
	return nil
}

// AnnounceArgs carries one pub/sub publication.
type AnnounceArgs struct {
	Topic string
	From  string
	Data  []byte
}

// Announce publishes a pub/sub message on the storage network's bus.
func (s *StorageService) Announce(args *AnnounceArgs, reply *ErrReply) error {
	s.net.Announce(args.Topic, args.From, args.Data)
	reply.Err = codeNone
	return nil
}

// ListenArgs polls a pub/sub topic from a cursor.
type ListenArgs struct {
	Topic string
	Since int
}

// ListenReply carries retained announcements and the next cursor.
type ListenReply struct {
	Msgs []storage.Announcement
	Next int
}

// Listen returns announcements on a topic from the given cursor.
func (s *StorageService) Listen(args *ListenArgs, reply *ListenReply) error {
	reply.Msgs, reply.Next = s.net.Listen(args.Topic, args.Since)
	return nil
}

// TopicArgs names a pub/sub topic.
type TopicArgs struct {
	Topic string
}

// ForgetTopic drops a topic's retained announcements.
func (s *StorageService) ForgetTopic(args *TopicArgs, reply *ErrReply) error {
	s.net.ForgetTopic(args.Topic)
	reply.Err = codeNone
	return nil
}

// DeleteAllArgs names a block to garbage-collect network-wide.
type DeleteAllArgs struct {
	CID string
}

// DeleteAll removes a block from every storage node.
func (s *StorageService) DeleteAll(args *DeleteAllArgs, reply *ErrReply) error {
	s.net.DeleteAll(cid.CID(args.CID))
	reply.Err = codeNone
	return nil
}

// --- Directory RPC service ----------------------------------------------

// DirectoryService exposes a directory.Service over RPC.
type DirectoryService struct {
	svc *directory.Service
	obs *serverObs
}

// ErrReply is a bare error-code reply.
type ErrReply struct {
	Err string
}

// PublishArgs carries one record plus the caller's deadline.
type PublishArgs struct {
	Rec      directory.Record
	Deadline int64
}

// Publish records an uploaded block.
func (d *DirectoryService) Publish(args *PublishArgs, reply *ErrReply) error {
	d.obs.count("Directory.Publish")
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	err := d.svc.Publish(ctx, args.Rec)
	if err == nil {
		d.obs.recordPublished(args.Rec)
	}
	reply.Err = encodeErr(err)
	return nil
}

// BatchArgs carries several records for one publish round trip.
type BatchArgs struct {
	Recs     []directory.Record
	Deadline int64
}

// PublishBatch records several uploads in one request.
func (d *DirectoryService) PublishBatch(args *BatchArgs, reply *ErrReply) error {
	d.obs.count("Directory.PublishBatch")
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	err := d.svc.PublishBatch(ctx, args.Recs)
	if err == nil {
		for _, rec := range args.Recs {
			d.obs.recordPublished(rec)
		}
	}
	reply.Err = encodeErr(err)
	return nil
}

// RecordReply carries a single directory record.
type RecordReply struct {
	Rec directory.Record
	Err string
}

// LookupArgs carries an address lookup plus the caller's deadline.
type LookupArgs struct {
	Addr     directory.Addr
	Deadline int64
}

// Lookup resolves an exact address.
func (d *DirectoryService) Lookup(args *LookupArgs, reply *RecordReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	rec, err := d.svc.Lookup(ctx, args.Addr)
	reply.Rec = rec
	reply.Err = encodeErr(err)
	return nil
}

// QueryArgs addresses per-iteration, per-partition queries.
type QueryArgs struct {
	Iter       int
	Partition  int
	Aggregator string
	Deadline   int64
}

// RecordsReply carries a record list.
type RecordsReply struct {
	Recs []directory.Record
}

// GradientsFor lists gradients visible for an aggregator.
func (d *DirectoryService) GradientsFor(args *QueryArgs, reply *RecordsReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	reply.Recs = d.svc.GradientsFor(ctx, args.Iter, args.Partition, args.Aggregator)
	return nil
}

// PartialUpdates lists the published partial updates.
func (d *DirectoryService) PartialUpdates(args *QueryArgs, reply *RecordsReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	reply.Recs = d.svc.PartialUpdates(ctx, args.Iter, args.Partition)
	return nil
}

// Update returns the accepted global update.
func (d *DirectoryService) Update(args *QueryArgs, reply *RecordReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	rec, err := d.svc.Update(ctx, args.Iter, args.Partition)
	reply.Rec = rec
	reply.Err = encodeErr(err)
	return nil
}

// CommitmentReply carries an accumulated commitment.
type CommitmentReply struct {
	Commitment []byte
	Count      int
	Err        string
}

// PartitionAccumulator returns the partition's accumulated commitment.
func (d *DirectoryService) PartitionAccumulator(args *QueryArgs, reply *CommitmentReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	acc, err := d.svc.PartitionAccumulator(ctx, args.Iter, args.Partition)
	reply.Commitment = acc
	reply.Err = encodeErr(err)
	return nil
}

// AggregatorAccumulator returns an aggregator's accumulated commitment.
func (d *DirectoryService) AggregatorAccumulator(args *QueryArgs, reply *CommitmentReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	acc, n, err := d.svc.AggregatorAccumulator(ctx, args.Iter, args.Partition, args.Aggregator)
	reply.Commitment = acc
	reply.Count = n
	reply.Err = encodeErr(err)
	return nil
}

// VerifyArgs carries a partial-update verification request.
type VerifyArgs struct {
	Iter       int
	Partition  int
	Aggregator string
	Data       []byte
	Deadline   int64
}

// BoolReply carries a verification verdict.
type BoolReply struct {
	OK  bool
	Err string
}

// IterArgs addresses a whole iteration.
type IterArgs struct {
	Iter int
}

// RecordsForIter lists an iteration's gradient and partial records.
func (d *DirectoryService) RecordsForIter(args *IterArgs, reply *RecordsReply) error {
	reply.Recs = d.svc.RecordsForIter(args.Iter)
	return nil
}

// ScheduleArgs carries an iteration's t_train deadline.
type ScheduleArgs struct {
	Iter   int
	TTrain time.Time
}

// SetSchedule registers an iteration's t_train deadline.
func (d *DirectoryService) SetSchedule(args *ScheduleArgs, reply *ErrReply) error {
	d.svc.SetSchedule(args.Iter, args.TTrain)
	reply.Err = codeNone
	return nil
}

// VerifyPartialUpdate checks a partial update against the accumulator.
func (d *DirectoryService) VerifyPartialUpdate(args *VerifyArgs, reply *BoolReply) error {
	ctx, cancel := serverCtx(args.Deadline)
	defer cancel()
	ok, err := d.svc.VerifyPartialUpdate(ctx, args.Iter, args.Partition, args.Aggregator, args.Data)
	reply.OK = ok
	reply.Err = encodeErr(err)
	return nil
}

// --- Server ---------------------------------------------------------------

// Server hosts storage and/or directory services on a TCP listener.
type Server struct {
	rpcSrv *rpc.Server
	ln     net.Listener
	obs    serverObs

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer creates an empty RPC server; register services before Serve.
func NewServer() *Server {
	return &Server{
		rpcSrv: rpc.NewServer(),
		conns:  make(map[net.Conn]struct{}),
	}
}

// RegisterStorage exposes a storage network.
func (s *Server) RegisterStorage(netw *storage.Network) error {
	return s.rpcSrv.RegisterName("Storage", &StorageService{net: netw, obs: &s.obs})
}

// RegisterDirectory exposes a directory service.
func (s *Server) RegisterDirectory(svc *directory.Service) error {
	return s.rpcSrv.RegisterName("Directory", &DirectoryService{svc: svc, obs: &s.obs})
}

// Listen binds the server to an address ("127.0.0.1:0" for an ephemeral
// port) and starts accepting connections in the background.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.rpcSrv.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes open connections and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// serverCtx resumes a caller's context on the server side of an RPC: a
// non-zero deadline (UnixNano) becomes a context deadline, so work started
// on behalf of a caller whose deadline already expired fails immediately
// instead of running to completion for nobody.
func serverCtx(deadline int64) (context.Context, context.CancelFunc) {
	if deadline == 0 {
		return context.Background(), func() {}
	}
	return context.WithDeadline(context.Background(), time.Unix(0, deadline))
}

// wireDeadline flattens a context's deadline for an RPC args struct
// (0 = no deadline).
func wireDeadline(ctx context.Context) int64 {
	if d, ok := ctx.Deadline(); ok {
		return d.UnixNano()
	}
	return 0
}

// --- Clients ---------------------------------------------------------------

// Client is a TCP connection to a transport server, usable as both a
// storage client and a directory client.
type Client struct {
	rpc     *rpc.Client
	metrics clientMetrics
}

var _ storage.Client = (*Client)(nil)

// Dial connects to a transport server.
func Dial(addr string) (*Client, error) {
	c, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{rpc: c}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// call issues an RPC honoring the caller's context: cancellation or an
// expired deadline abandons the wait (the reply, if it ever arrives, is
// discarded by net/rpc). The deadline also rides the args when the struct
// carries one, so the server stops working too.
func (c *Client) call(ctx context.Context, method string, args, reply any) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	done := c.rpc.Go(method, args, reply, make(chan *rpc.Call, 1)).Done
	select {
	case <-ctx.Done():
		return ctx.Err()
	case call := <-done:
		return call.Error
	}
}

// Put stores a block on the addressed node.
func (c *Client) Put(ctx context.Context, nodeID string, data []byte) (cid.CID, error) {
	var reply PutReply
	if err := c.call(ctx, "Storage.Put", &PutArgs{Node: nodeID, Data: data, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return "", err
	}
	if reply.Err == codeNone {
		c.metrics.uploaded(nodeID, len(data))
	}
	return cid.CID(reply.CID), decodeErr(reply.Err)
}

// Get retrieves a block from the addressed node.
func (c *Client) Get(ctx context.Context, nodeID string, id cid.CID) ([]byte, error) {
	var reply GetReply
	if err := c.call(ctx, "Storage.Get", &GetArgs{Node: nodeID, CID: string(id), Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil, err
	}
	c.metrics.downloaded(nodeID, len(reply.Data))
	return reply.Data, decodeErr(reply.Err)
}

// Fetch retrieves a block from any live node.
func (c *Client) Fetch(ctx context.Context, id cid.CID) ([]byte, error) {
	var reply GetReply
	if err := c.call(ctx, "Storage.Fetch", &GetArgs{CID: string(id), Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil, err
	}
	c.metrics.downloaded("*", len(reply.Data))
	return reply.Data, decodeErr(reply.Err)
}

// MergeGet requests provider-side pre-aggregation.
func (c *Client) MergeGet(ctx context.Context, nodeID string, cs []cid.CID) ([]byte, error) {
	return c.MergeGetSpan(ctx, nodeID, cs, obs.SpanContext{})
}

// MergeGetSpan is MergeGet carrying the caller's span context over the
// wire, so the storage node's merge span lands in the caller's trace.
func (c *Client) MergeGetSpan(ctx context.Context, nodeID string, cs []cid.CID, parent obs.SpanContext) ([]byte, error) {
	ids := make([]string, len(cs))
	for i, x := range cs {
		ids[i] = string(x)
	}
	var reply GetReply
	if err := c.call(ctx, "Storage.MergeGet", &MergeArgs{Node: nodeID, CIDs: ids, Span: parent, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil, err
	}
	c.metrics.downloaded(nodeID, len(reply.Data))
	return reply.Data, decodeErr(reply.Err)
}

// Publish records an uploaded block with the directory.
func (c *Client) Publish(ctx context.Context, rec directory.Record) error {
	var reply ErrReply
	if err := c.call(ctx, "Directory.Publish", &PublishArgs{Rec: rec, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return err
	}
	return decodeErr(reply.Err)
}

// PublishBatch records several uploads in one round trip.
func (c *Client) PublishBatch(ctx context.Context, recs []directory.Record) error {
	var reply ErrReply
	if err := c.call(ctx, "Directory.PublishBatch", &BatchArgs{Recs: recs, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return err
	}
	return decodeErr(reply.Err)
}

// Lookup resolves an exact address.
func (c *Client) Lookup(ctx context.Context, addr directory.Addr) (directory.Record, error) {
	var reply RecordReply
	if err := c.call(ctx, "Directory.Lookup", &LookupArgs{Addr: addr, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return directory.Record{}, err
	}
	return reply.Rec, decodeErr(reply.Err)
}

// GradientsFor lists gradient records for an aggregator. RPC failures
// surface as an empty list, which the protocol treats as "nothing yet".
func (c *Client) GradientsFor(ctx context.Context, iter, partition int, aggregator string) []directory.Record {
	var reply RecordsReply
	if err := c.call(ctx, "Directory.GradientsFor",
		&QueryArgs{Iter: iter, Partition: partition, Aggregator: aggregator, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil
	}
	return reply.Recs
}

// PartialUpdates lists published partial updates.
func (c *Client) PartialUpdates(ctx context.Context, iter, partition int) []directory.Record {
	var reply RecordsReply
	if err := c.call(ctx, "Directory.PartialUpdates",
		&QueryArgs{Iter: iter, Partition: partition, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil
	}
	return reply.Recs
}

// Update returns the accepted global update.
func (c *Client) Update(ctx context.Context, iter, partition int) (directory.Record, error) {
	var reply RecordReply
	if err := c.call(ctx, "Directory.Update",
		&QueryArgs{Iter: iter, Partition: partition, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return directory.Record{}, err
	}
	return reply.Rec, decodeErr(reply.Err)
}

// PartitionAccumulator returns the accumulated partition commitment.
func (c *Client) PartitionAccumulator(ctx context.Context, iter, partition int) (pedersen.Commitment, error) {
	var reply CommitmentReply
	if err := c.call(ctx, "Directory.PartitionAccumulator",
		&QueryArgs{Iter: iter, Partition: partition, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil, err
	}
	return pedersen.Commitment(reply.Commitment), decodeErr(reply.Err)
}

// AggregatorAccumulator returns an aggregator's accumulated commitment.
func (c *Client) AggregatorAccumulator(ctx context.Context, iter, partition int, aggregator string) (pedersen.Commitment, int, error) {
	var reply CommitmentReply
	if err := c.call(ctx, "Directory.AggregatorAccumulator",
		&QueryArgs{Iter: iter, Partition: partition, Aggregator: aggregator, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return nil, 0, err
	}
	return pedersen.Commitment(reply.Commitment), reply.Count, decodeErr(reply.Err)
}

// Announce publishes a pub/sub message. Failures are swallowed: pub/sub is
// a discovery hint, and the directory remains the source of truth.
func (c *Client) Announce(topic, from string, data []byte) {
	var reply ErrReply
	_ = c.rpc.Call("Storage.Announce", &AnnounceArgs{Topic: topic, From: from, Data: data}, &reply)
}

// Listen polls a pub/sub topic from a cursor. On RPC failure it reports no
// messages and leaves the cursor unchanged.
func (c *Client) Listen(topic string, since int) ([]storage.Announcement, int) {
	var reply ListenReply
	if err := c.rpc.Call("Storage.Listen", &ListenArgs{Topic: topic, Since: since}, &reply); err != nil {
		return nil, since
	}
	return reply.Msgs, reply.Next
}

// ForgetTopic drops a topic's retained announcements.
func (c *Client) ForgetTopic(topic string) {
	var reply ErrReply
	_ = c.rpc.Call("Storage.ForgetTopic", &TopicArgs{Topic: topic}, &reply)
}

// DeleteAll garbage-collects a block from every storage node.
func (c *Client) DeleteAll(id cid.CID) {
	var reply ErrReply
	_ = c.rpc.Call("Storage.DeleteAll", &DeleteAllArgs{CID: string(id)}, &reply)
}

// RecordsForIter lists an iteration's gradient and partial records.
func (c *Client) RecordsForIter(iter int) []directory.Record {
	var reply RecordsReply
	if err := c.rpc.Call("Directory.RecordsForIter", &IterArgs{Iter: iter}, &reply); err != nil {
		return nil
	}
	return reply.Recs
}

// SetSchedule announces an iteration's t_train deadline to the directory.
// RPC failures are swallowed: the schedule is an optimization, and the
// protocol remains safe without it (the directory just cannot reject late
// gradients).
func (c *Client) SetSchedule(iter int, tTrain time.Time) {
	var reply ErrReply
	_ = c.rpc.Call("Directory.SetSchedule", &ScheduleArgs{Iter: iter, TTrain: tTrain}, &reply)
}

// VerifyPartialUpdate checks a partial update against the accumulator.
func (c *Client) VerifyPartialUpdate(ctx context.Context, iter, partition int, aggregator string, data []byte) (bool, error) {
	var reply BoolReply
	if err := c.call(ctx, "Directory.VerifyPartialUpdate",
		&VerifyArgs{Iter: iter, Partition: partition, Aggregator: aggregator, Data: data, Deadline: wireDeadline(ctx)}, &reply); err != nil {
		return false, err
	}
	return reply.OK, decodeErr(reply.Err)
}
