package transport

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"ipls/internal/cid"
	"ipls/internal/core"
	"ipls/internal/directory"
	"ipls/internal/scalar"
	"ipls/internal/storage"
)

// The TCP client must satisfy the same interfaces as the in-memory
// backends.
var _ core.Directory = (*Client)(nil)

func startServer(t *testing.T, cfg *core.Config) (string, *storage.Network, *directory.Service) {
	t.Helper()
	field := scalar.NewField(cfg.Curve.N)
	netw := storage.NewNetwork(field, 1)
	for _, id := range cfg.StorageNodes {
		netw.AddNode(id)
	}
	params, err := cfg.PedersenParams()
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.New(params, netw)
	cfg.ApplyAssignments(dir)

	srv := NewServer()
	if err := srv.RegisterStorage(netw); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, netw, dir
}

func dialClient(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestStorageRoundTripOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0", "s1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, cfg)
	c := dialClient(t, addr)

	data := []byte("tcp gradient block")
	id, err := c.Put(context.Background(), "s0", data)
	if err != nil {
		t.Fatal(err)
	}
	if !cid.Verify(data, id) {
		t.Fatal("CID mismatch over TCP")
	}
	got, err := c.Get(context.Background(), "s0", id)
	if err != nil || string(got) != string(data) {
		t.Fatalf("Get: %v %q", err, got)
	}
	fetched, err := c.Fetch(context.Background(), id)
	if err != nil || string(fetched) != string(data) {
		t.Fatalf("Fetch: %v", err)
	}
	if _, err := c.Get(context.Background(), "s1", id); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("error identity lost over TCP: %v", err)
	}
	if _, err := c.Get(context.Background(), "ghost", id); !errors.Is(err, storage.ErrUnknownNode) {
		t.Fatalf("unknown-node identity lost: %v", err)
	}
}

func TestDirectoryErrorsSurviveTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-dir", ModelDim: 8, Partitions: 1,
		Trainers: []string{"t0"}, AggregatorsPerPartition: 1,
		StorageNodes: []string{"s0"}, Verifiable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, cfg)
	c := dialClient(t, addr)

	if _, err := c.Update(context.Background(), 0, 0); !errors.Is(err, directory.ErrNotFound) {
		t.Fatalf("ErrNotFound lost: %v", err)
	}
	if _, err := c.Lookup(context.Background(), directory.Addr{Uploader: "x", Type: directory.TypeGradient}); !errors.Is(err, directory.ErrNotFound) {
		t.Fatalf("Lookup ErrNotFound lost: %v", err)
	}
	id, err := c.Put(context.Background(), "s0", []byte("gradient"))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Publish(context.Background(), directory.Record{
		Addr: directory.Addr{Uploader: "t0", Partition: 0, Iter: 0, Type: directory.TypeGradient},
		CID:  id, Node: "s0",
	})
	if !errors.Is(err, directory.ErrMissingCommitment) {
		t.Fatalf("ErrMissingCommitment lost: %v", err)
	}
}

func TestFullIterationOverTCP(t *testing.T) {
	// The whole protocol running through real sockets: trainers and
	// aggregators talk to the storage network and directory over TCP.
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-e2e", ModelDim: 20, Partitions: 2,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  1,
		Verifiable:              true,
		TTrain:                  3 * time.Second,
		TSync:                   3 * time.Second,
		PollInterval:            2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, cfg)
	client := dialClient(t, addr)

	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	deltas := make(map[string][]float64)
	want := make([]float64, 20)
	for _, tr := range cfg.Trainers {
		d := make([]float64, 20)
		for i := range d {
			d[i] = rng.NormFloat64()
			want[i] += d[i] / 4
		}
		deltas[tr] = d
	}
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("incomplete partitions over TCP: %v", res.Incomplete)
	}
	for i := range want {
		if math.Abs(res.AvgDelta[i]-want[i]) > 1e-6 {
			t.Fatalf("param %d: got %v want %v", i, res.AvgDelta[i], want[i])
		}
	}
}

func TestMaliciousDetectionOverTCP(t *testing.T) {
	cfg, err := core.NewConfig(core.TaskSpec{
		TaskID: "tcp-evil", ModelDim: 12, Partitions: 1,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0"},
		Verifiable:              true,
		TTrain:                  2 * time.Second,
		TSync:                   500 * time.Millisecond,
		PollInterval:            2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, _, _ := startServer(t, cfg)
	client := dialClient(t, addr)
	sess, err := core.NewSession(cfg, client, client)
	if err != nil {
		t.Fatal(err)
	}
	deltas := map[string][]float64{
		"t0": make([]float64, 12),
		"t1": make([]float64, 12),
	}
	evil := core.AggregatorID(0, 0)
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]core.Behavior{evil: core.BehaviorDropGradient})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("malicious drop not detected over TCP")
	}
}

func TestErrCodeRoundTrip(t *testing.T) {
	canonical := []error{
		nil,
		storage.ErrNotFound,
		storage.ErrNodeDown,
		storage.ErrUnknownNode,
		directory.ErrNotFound,
		directory.ErrConflict,
		directory.ErrAlreadyFinal,
		directory.ErrVerificationFailed,
		directory.ErrMissingCommitment,
		directory.ErrTooLate,
		directory.ErrTooEarly,
		directory.ErrBadSignature,
	}
	for _, err := range canonical {
		got := decodeErr(encodeErr(err))
		if err == nil {
			if got != nil {
				t.Fatalf("nil round trip gave %v", got)
			}
			continue
		}
		if !errors.Is(got, err) {
			t.Fatalf("round trip of %v gave %v", err, got)
		}
	}
	other := errors.New("something else happened")
	got := decodeErr(encodeErr(other))
	if got == nil || got.Error() != other.Error() {
		t.Fatalf("unknown error round trip gave %v", got)
	}
	// Wrapped canonical errors map to their base.
	wrapped := decodeErr(encodeErr(errorsJoin(directory.ErrVerificationFailed)))
	if !errors.Is(wrapped, directory.ErrVerificationFailed) {
		t.Fatal("wrapped canonical error lost identity")
	}
}

func errorsJoin(err error) error {
	return &wrapErr{err}
}

type wrapErr struct{ inner error }

func (w *wrapErr) Error() string { return "wrapped: " + w.inner.Error() }
func (w *wrapErr) Unwrap() error { return w.inner }

func TestServerClose(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial after close should fail")
	}
}
