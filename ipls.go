package ipls

import (
	"ipls/internal/baseline"
	"ipls/internal/core"
	"ipls/internal/deals"
	"ipls/internal/directory"
	"ipls/internal/distdir"
	"ipls/internal/gossip"
	"ipls/internal/group"
	"ipls/internal/identity"
	"ipls/internal/ml"
	"ipls/internal/resilience"
	"ipls/internal/scalar"
	"ipls/internal/scenario"
	"ipls/internal/storage"
	"ipls/internal/transport"
)

// This file is the library's public API: a curated facade over the
// implementation packages. Downstream users import "ipls" and get the
// protocol (TaskSpec → Config → Session/Task), the storage and directory
// backends, the virtual-time simulator and the ML substrate, without
// reaching into internal packages.

// ---- Task configuration -------------------------------------------------

// TaskSpec declares a federated-learning task (see core.TaskSpec).
type TaskSpec = core.TaskSpec

// Config is the deterministic expansion of a TaskSpec shared by all
// participants.
type Config = core.Config

// NewConfig validates and expands a TaskSpec.
func NewConfig(ts TaskSpec) (*Config, error) { return core.NewConfig(ts) }

// AggregatorID names the j-th aggregator of partition p.
func AggregatorID(p, j int) string { return core.AggregatorID(p, j) }

// ---- Protocol execution --------------------------------------------------

// Session executes the protocol against pluggable storage and directory
// backends.
type Session = core.Session

// NewSession creates a session over explicit backends (e.g. TCP clients).
func NewSession(cfg *Config, store StorageClient, dir DirectoryClient) (*Session, error) {
	return core.NewSession(cfg, store, dir)
}

// NewLocalStack wires an in-memory deployment: storage network, directory
// service and session.
func NewLocalStack(cfg *Config, replicas int) (*Session, *StorageNetwork, *DirectoryService, error) {
	return core.NewLocalStack(cfg, replicas)
}

// StorageClient is the participant's view of the storage network.
type StorageClient = storage.Client

// DirectoryClient is the participant's view of the directory service.
type DirectoryClient = core.Directory

// Aggregator behaviors (honest and the §III-A malicious deviations).
type Behavior = core.Behavior

// Behavior values.
const (
	BehaviorHonest        = core.BehaviorHonest
	BehaviorDropGradient  = core.BehaviorDropGradient
	BehaviorAlterGradient = core.BehaviorAlterGradient
	BehaviorForgeUpdate   = core.BehaviorForgeUpdate
	BehaviorDropout       = core.BehaviorDropout
)

// IterationResult is the outcome of one protocol iteration.
type IterationResult = core.IterationResult

// AggregatorReport summarizes one aggregator's iteration.
type AggregatorReport = core.AggregatorReport

// Tracer receives structured protocol events; Recorder collects them.
type (
	Tracer   = core.Tracer
	Recorder = core.Recorder
	Event    = core.Event
)

// ---- Federated-learning driver -------------------------------------------

// Task drives a complete FL job (local SGD → protocol → global model).
type Task = core.Task

// NewTask builds a task over a session.
func NewTask(s *Session, m Model, locals map[string]*Dataset, sgd SGDConfig, initial []float64) (*Task, error) {
	return core.NewTask(s, m, locals, sgd, initial)
}

// RoundMetrics reports one FL round.
type RoundMetrics = core.RoundMetrics

// ---- Machine-learning substrate -------------------------------------------

// Model is a differentiable classifier with a flat parameter vector.
type Model = ml.Model

// Dataset is a labelled classification dataset.
type Dataset = ml.Dataset

// SGDConfig configures local training.
type SGDConfig = ml.SGDConfig

// NewLogistic creates a softmax-regression model.
func NewLogistic(features, classes int) *ml.Logistic { return ml.NewLogistic(features, classes) }

// NewMLP creates a one-hidden-layer network with seeded initialization.
func NewMLP(features, hidden, classes int, seed int64) *ml.MLP {
	return ml.NewMLP(features, hidden, classes, seed)
}

// Blobs generates a Gaussian-blobs dataset.
func Blobs(n, features, classes int, spread float64, seed int64) *Dataset {
	return ml.Blobs(n, features, classes, spread, seed)
}

// Rings generates a non-linearly-separable concentric-rings dataset.
func Rings(n, classes int, noise float64, seed int64) *Dataset {
	return ml.Rings(n, classes, noise, seed)
}

// Accuracy scores a model on a dataset.
func Accuracy(m Model, d *Dataset) float64 { return ml.Accuracy(m, d) }

// ---- Storage & directory backends -----------------------------------------

// StorageNetwork is the in-memory content-addressed storage network.
type StorageNetwork = storage.Network

// NewStorageNetwork creates a standalone in-memory storage network.
//
// Deprecated: use NewStorageNetworkOpts, which also selects the block-store
// backend (memory or content-addressed disk) and its cache. This wrapper is
// kept for source compatibility and is equivalent to
// NewStorageNetworkOpts(StorageNetworkOptions{CurveName: curveName, Replicas: replicas}).
func NewStorageNetwork(curveName string, replicas int) (*StorageNetwork, error) {
	return NewStorageNetworkOpts(StorageNetworkOptions{CurveName: curveName, Replicas: replicas})
}

// StorageNetworkOptions configures NewStorageNetworkOpts. The zero value is
// valid: default commitment curve, replication factor 1, in-memory blocks.
type StorageNetworkOptions struct {
	// CurveName selects the commitment curve whose scalar field backs
	// merge-and-download arithmetic ("" = secp256r1-fast).
	CurveName string
	// Replicas is the replication factor (minimum 1).
	Replicas int
	// Store selects the per-node block-store backend: the zero value keeps
	// blocks in memory; {Backend: BackendFS, Dir: ...} makes every node a
	// content-addressed on-disk store (with an optional LRU cache) that
	// survives restarts.
	Store StoreConfig
}

// NewStorageNetworkOpts creates a standalone storage network from an options
// struct (NewLocalStack builds an in-memory one automatically).
func NewStorageNetworkOpts(opts StorageNetworkOptions) (*StorageNetwork, error) {
	name := opts.CurveName
	if name == "" {
		name = "secp256r1-fast"
	}
	curve, err := group.ByName(name)
	if err != nil {
		return nil, err
	}
	return storage.NewNetworkWithStore(scalar.NewField(curve.N), opts.Replicas, opts.Store), nil
}

// BlockStore is the pluggable per-node block backend: content-addressed
// Put/Get/Has/Delete/Keys over CIDs. NewMemStore and OpenFSStore are the
// built-in implementations; NewCachedStore layers an LRU block cache over
// either.
type BlockStore = storage.BlockStore

// StoreConfig selects a network's per-node block-store backend.
type StoreConfig = storage.StoreConfig

// Block-store backends.
const (
	BackendMem = storage.BackendMem
	BackendFS  = storage.BackendFS
)

// Block-store error identities: ErrIntegrity marks a block whose on-disk
// bytes no longer hash to its CID (local rot — distinct from a byzantine
// replica, which serves wrong bytes that fail the caller's verification);
// ErrBackend marks an infrastructure failure of the backend itself and is
// what StorageNetwork.Health wraps backend trouble in.
var (
	ErrIntegrity = storage.ErrIntegrity
	ErrBackend   = storage.ErrBackend
)

// NewMemStore creates the in-memory block store (process-lifetime, fastest).
func NewMemStore() BlockStore { return storage.NewMemStore() }

// OpenFSStore opens (or creates) a content-addressed on-disk block store
// rooted at dir. Blocks are keyed by CID in a fanout layout, written with
// atomic temp-file + rename, and re-hashed on read — a mismatch surfaces
// ErrIntegrity. Reopening the same dir serves every previously stored block.
func OpenFSStore(dir string) (BlockStore, error) { return storage.OpenFSStore(dir) }

// NewCachedStore wraps backing with an LRU block cache of capBlocks entries
// (hits/misses surface as storage_cache_{hits,misses}_total).
func NewCachedStore(backing BlockStore, capBlocks int) BlockStore {
	return storage.NewCachedStore(backing, capBlocks)
}

// GCReport summarizes one keep-set garbage-collection sweep.
type GCReport = storage.GCReport

// ---- Durable deployment ----------------------------------------------------

// DurableStack is a local deployment whose storage blocks and directory
// records survive process restarts: blocks on the disk backend under
// StoreDir/blocks/<node>, the directory snapshot at StoreDir/directory.json.
// A reopened stack serves every pre-crash CID without re-replication.
type DurableStack = core.DurableStack

// DurableOptions configures OpenDurableStack.
type DurableOptions = core.DurableOptions

// GCOptions pins the working set (live iterations, checkpoint DAG roots)
// that Session.GCSuperseded must not collect.
type GCOptions = core.GCOptions

// OpenDurableStack wires a disk-backed session/network/directory stack
// rooted at opts.StoreDir, restoring persisted state when present. Close
// persists the directory snapshot back and closes the stores.
func OpenDurableStack(cfg *Config, opts DurableOptions) (*DurableStack, error) {
	return core.OpenDurableStack(cfg, opts)
}

// DirectoryService is the in-process directory service.
type DirectoryService = directory.Service

// ShardedDirectory spreads the directory maps across shards (§VI).
type ShardedDirectory = distdir.Sharded

// NewShardedDirectory creates a partition-sharded directory.
func NewShardedDirectory(taskID string, shards int, cfg *Config, fetcher directory.BlockFetcher) (*ShardedDirectory, error) {
	params, err := cfg.PedersenParams()
	if err != nil {
		return nil, err
	}
	s, err := distdir.New(taskID, shards, params, fetcher)
	if err != nil {
		return nil, err
	}
	for p := 0; p < cfg.Spec.Partitions; p++ {
		for _, agg := range cfg.Aggregators[p] {
			for _, tr := range cfg.TrainersOf(p, agg) {
				s.SetAssignment(p, tr, agg)
			}
		}
	}
	return s, nil
}

// Record is a directory record (addr → CID).
type Record = directory.Record

// PutRequest, GetRequest and MergeRequest are the option structs taken by
// StorageClient's context-first methods; the zero value plus the required
// fields (node, payload or CIDs) is a complete request, and new options
// can be added without breaking callers.
type (
	PutRequest   = storage.PutRequest
	GetRequest   = storage.GetRequest
	MergeRequest = storage.MergeRequest
)

// ---- Resilience ------------------------------------------------------------

// RetryPolicy bounds retries, backoff and per-attempt timeouts for a
// resilient client; ResilientClient and ResilientDirectory are
// policy-driven wrappers that absorb transient faults (node crashes, slow
// links, flaky RPCs) with retries, replica failover and degraded merges.
type (
	RetryPolicy        = resilience.Policy
	ResilientClient    = resilience.Client
	ResilientDirectory = resilience.Directory
)

// DefaultRetryPolicy returns conservative production defaults (4 attempts,
// 25ms base backoff with ±20% jitter capped at 400ms, 1s per-RPC timeout).
func DefaultRetryPolicy() *RetryPolicy { return resilience.DefaultPolicy() }

// WithResilience wraps a storage client in the retry/failover layer. The
// task's commitment-curve field enables degraded merges (per-CID fetch and
// local fold when a provider is down); pass the session's Config so the
// field matches the deployment. Use the wrapper's Storage() view as the
// StorageClient of NewSession.
func WithResilience(inner StorageClient, cfg *Config, p *RetryPolicy) *ResilientClient {
	return resilience.Wrap(inner, scalar.NewField(cfg.Curve.N), p)
}

// WithDirectoryResilience wraps a directory backend (in-process service,
// sharded directory or TCP client) in the same retry policy. Protocol
// verdicts — conflicts, failed verifications, too-late publishes — are
// terminal and surface immediately; only transient faults are retried.
func WithDirectoryResilience(inner resilience.DirectoryService, p *RetryPolicy) *ResilientDirectory {
	return resilience.WrapDirectory(inner, p)
}

// IsRetryable reports whether err is a transient fault worth retrying
// (node down, deadline exceeded, too-early lookup, connection shutdown,
// network timeouts) as opposed to a terminal protocol verdict (not found,
// conflicting publish, failed verification, bad signature) or caller
// cancellation. The transport maps wire error codes back to the same
// sentinel errors, so the verdict is identical in-process and over TCP.
func IsRetryable(err error) bool { return resilience.IsRetryable(err) }

// FaultPlan is a deterministic schedule of storage-node faults (crash,
// recover, slow, flaky) keyed by iteration — the fault-injection side of
// chaos testing. Parse one from "crash:ipfs-01@iter2,slow:ipfs-00@iter3:50ms"
// syntax and Apply it before each iteration.
type FaultPlan = storage.FaultPlan

// ParseFaultPlan parses the comma-separated fault-event syntax used by
// iplssim's -faults flag.
func ParseFaultPlan(s string) (*FaultPlan, error) { return storage.ParseFaultPlan(s) }

// ChurnPlan is a deterministic schedule of membership change: permanent
// storage-node departures, crashes of storage nodes / aggregators /
// trainers, and rejoins — keyed by iteration. Storage events apply to a
// StorageNetwork directly (ApplyStorage); role events are interpreted by
// a ChurnRunner. ChurnEvent/ChurnKind are its building blocks.
type (
	ChurnPlan  = storage.ChurnPlan
	ChurnEvent = storage.ChurnEvent
	ChurnKind  = storage.ChurnKind
)

// Churn event kinds.
const (
	ChurnDepart = storage.ChurnDepart
	ChurnCrash  = storage.ChurnCrash
	ChurnRejoin = storage.ChurnRejoin
)

// ParseChurnPlan parses the comma-separated churn-event syntax used by
// the -churn flags, e.g. "depart:ipfs-03@iter2,crash:agg-p0-0@iter1,
// rejoin:t5@iter3".
func ParseChurnPlan(s string) (*ChurnPlan, error) { return storage.ParseChurnPlan(s) }

// RepairReport summarizes one StorageNetwork.RepairScan — the
// anti-entropy pass that re-replicates blocks whose live replica count
// was eroded by departures and crashes.
type RepairReport = storage.RepairReport

// ChurnRunner drives a Task across rounds under a ChurnPlan: storage
// events hit the network, crashed aggregators become dropouts (with
// standby takeover when a whole partition is down), crashed trainers sit
// out and bootstrap from the latest checkpoint DAG on rejoin, and every
// round ends with a checkpoint plus a replication repair scan.
type ChurnRunner = core.ChurnRunner

// NewChurnRunner wires a churn runner over a task, its storage network
// and a parsed plan.
func NewChurnRunner(task *Task, net *StorageNetwork, plan *ChurnPlan) *ChurnRunner {
	return core.NewChurnRunner(task, net, plan)
}

// ScenarioPlan is a parsed composable fault scenario: one grammar
// covering membership churn, storage faults, link degradation, network
// partitions, Byzantine uploads and late trainers (see ParseScenario).
type ScenarioPlan = scenario.Plan

// ParseScenario parses the comma-separated scenario grammar used by the
// iplssim -scenario flag, e.g.
// "depart:ipfs-03@iter1,partition:mainline|ipfs-01@iter2..3,
// corrupt:trainer-01@iter2,late:trainer-02@iter4".
func ParseScenario(s string) (*ScenarioPlan, error) { return scenario.Parse(s) }

// RoundOptions extends Task rounds with fault injections: absent, late
// or Byzantine trainers, aggregator behaviors, standbys and quorum.
type RoundOptions = core.RoundOptions

// ScenarioRunner drives a Task across rounds under a ScenarioPlan,
// fanning one plan into per-subsystem injections: churn, storage
// faults, partition windows that open and heal (with re-replication),
// Byzantine uploads and late-delta folding, plus optional m-of-n quorum
// rounds.
type ScenarioRunner = core.ScenarioRunner

// NewScenarioRunner wires a scenario runner over a task, its storage
// network and a parsed plan.
func NewScenarioRunner(task *Task, net *StorageNetwork, plan *ScenarioPlan) *ScenarioRunner {
	return core.NewScenarioRunner(task, net, plan)
}

// Placement selects the replica placement policy.
type Placement = storage.Placement

// Placement policies.
const (
	PlacementRing       = storage.PlacementRing
	PlacementRendezvous = storage.PlacementRendezvous
)

// ---- Identities -----------------------------------------------------------

// KeyPair is a participant's Ed25519 signing identity; Registry holds the
// public keys the directory authenticates against; Keyring holds the
// private keys a process controls.
type (
	KeyPair  = identity.KeyPair
	Registry = identity.Registry
	Keyring  = identity.Keyring
)

// GenerateIdentity creates a fresh participant identity.
func GenerateIdentity(id string) (*KeyPair, error) { return identity.Generate(id) }

// DeterministicIdentities derives a keyring and registry for the listed
// participants (tests/demos).
func DeterministicIdentities(label string, ids []string) (*Keyring, *Registry) {
	return identity.DeterministicSetup(label, ids)
}

// ---- Networked deployment ---------------------------------------------------

// Server hosts the storage network and directory service over TCP.
type Server = transport.Server

// NewServer creates an empty TCP server; register services, then Listen.
func NewServer() *Server { return transport.NewServer() }

// Client is a TCP connection usable as both StorageClient and
// DirectoryClient.
type Client = transport.Client

// Dial connects to a transport server.
func Dial(addr string) (*Client, error) { return transport.Dial(addr) }

// ---- Evaluation ------------------------------------------------------------

// SimConfig parameterizes a virtual-time protocol simulation; SimResult
// holds its measurements.
type (
	SimConfig = core.SimConfig
	SimResult = core.SimResult
)

// Simulate runs one protocol iteration in virtual time (the paper's delay
// figures).
func Simulate(cfg SimConfig) (*SimResult, error) { return core.Simulate(cfg) }

// AnalyticAggregationDelay evaluates the §III-E closed form
// τ = S·(T/(dP) + P/b) in seconds.
func AnalyticAggregationDelay(partitionBytes int64, trainersPerAgg, providers int, dMbps, bMbps float64) float64 {
	return core.AnalyticAggregationDelay(partitionBytes, trainersPerAgg, providers, dMbps, bMbps)
}

// OptimalProviders returns the §III-E optimum |P_ij| = √(b·|T_ij|/d).
func OptimalProviders(trainersPerAgg int, dMbps, bMbps float64) float64 {
	return core.OptimalProviders(trainersPerAgg, dMbps, bMbps)
}

// GossipConfig parameterizes the purely-decentralized baseline; GossipRun
// executes it.
type GossipConfig = gossip.Config

// GossipRun executes gossip learning for comparison with the protocol.
func GossipRun(m Model, locals []*Dataset, eval *Dataset, initial []float64, cfg GossipConfig) (*gossip.Result, error) {
	return gossip.Run(m, locals, eval, initial, cfg)
}

// BCFLConfig and IPLSConfig parameterize the blockchain-baseline cost
// comparison; BCFLCosts and IPLSCosts evaluate it.
type (
	BCFLConfig = baseline.BCFLConfig
	IPLSConfig = baseline.IPLSConfig
)

// Cost-model entry points for the blockchain baseline comparison.
var (
	BCFLCosts = baseline.BCFLCosts
	IPLSCosts = baseline.IPLSCosts
	BCFLDelay = baseline.BCFLDelay
)

// StorageMarket is the Filecoin-style deal market (§VI availability);
// DealsConfig sets its economic parameters.
type (
	StorageMarket = deals.Market
	DealsConfig   = deals.Config
)

// NewStorageMarket creates a deal market over a storage backend.
func NewStorageMarket(store deals.Retriever, cfg DealsConfig, seed int64) (*StorageMarket, error) {
	return deals.NewMarket(store, cfg, seed)
}

// MarketClient is the account name of the task launcher in the deal
// market.
const MarketClient = deals.Client
