package ipls_test

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"ipls"
)

// TestFacadeEndToEnd drives a complete FL job purely through the public
// API: config, local stack, identities, task, rounds, simulation.
func TestFacadeEndToEnd(t *testing.T) {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "facade",
		ModelDim:                20,
		Partitions:              4,
		Trainers:                []string{"t0", "t1", "t2", "t3"},
		AggregatorsPerPartition: 2,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  1,
		Verifiable:              true,
		TTrain:                  3 * time.Second,
		TSync:                   3 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, net, dir, err := ipls.NewLocalStack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	net.SetPlacement(ipls.PlacementRendezvous)
	ring, reg := ipls.DeterministicIdentities(cfg.TaskID, cfg.ParticipantIDs())
	dir.SetRegistry(reg)
	sess.SetKeyring(ring)

	data := ipls.Blobs(240, 4, 4, 0.8, 1)
	splits, err := data.SplitIID(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	locals := map[string]*ipls.Dataset{}
	for i, tr := range cfg.Trainers {
		locals[tr] = splits[i]
	}
	m := ipls.NewLogistic(4, 4)
	task, err := ipls.NewTask(sess, m, locals,
		ipls.SGDConfig{LearningRate: 0.3, Epochs: 2, BatchSize: 16}, m.Params())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		metrics, _, err := task.RunRound(context.Background(), nil)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if !metrics.Applied {
			t.Fatalf("round %d not applied", r)
		}
	}
	acc, _, err := task.Evaluate(data)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.85 {
		t.Fatalf("facade task accuracy %v", acc)
	}
}

// TestFacadeMaliciousDetection drives the verifiable-aggregation story
// through the facade.
func TestFacadeMaliciousDetection(t *testing.T) {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "facade-evil",
		ModelDim:                12,
		Partitions:              1,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0"},
		Verifiable:              true,
		TTrain:                  2 * time.Second,
		TSync:                   400 * time.Millisecond,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, _, _, err := ipls.NewLocalStack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	rec := &ipls.Recorder{}
	sess.SetTracer(rec)
	deltas := map[string][]float64{"t0": make([]float64, 12), "t1": make([]float64, 12)}
	res, err := sess.RunIteration(context.Background(), 0, deltas,
		map[string]ipls.Behavior{ipls.AggregatorID(0, 0): ipls.BehaviorForgeUpdate})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected() {
		t.Fatal("facade failed to detect forged update")
	}
	if len(rec.Events()) == 0 {
		t.Fatal("facade tracer recorded nothing")
	}
}

// TestFacadeSimulationAndBaselines exercises the evaluation surface.
func TestFacadeSimulationAndBaselines(t *testing.T) {
	res, err := ipls.Simulate(ipls.SimConfig{
		Trainers:                16,
		Partitions:              1,
		AggregatorsPerPartition: 1,
		PartitionBytes:          1_300_000,
		StorageNodes:            16,
		ProvidersPerAggregator:  4,
		BandwidthMbps:           10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ipls.AnalyticAggregationDelay(1_300_000, 16, 4, 10, 10)
	if math.Abs(res.TotalDelay.Seconds()-want) > 0.1 {
		t.Fatalf("facade sim %v vs analytic %v", res.TotalDelay.Seconds(), want)
	}
	if _, _, err := ipls.BCFLCosts(ipls.BCFLConfig{
		Rounds: 5, Trainers: 4, ChainNodes: 3, UpdateBytes: 1 << 10,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ipls.IPLSCosts(ipls.IPLSConfig{
		Rounds: 5, Trainers: 4, Partitions: 2, AggregatorsPerPartition: 1, UpdateBytes: 1 << 10,
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeTCP exercises the networked deployment through the facade.
func TestFacadeTCP(t *testing.T) {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "facade-tcp",
		ModelDim:                8,
		Partitions:              2,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1"},
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, net, dir, err := ipls.NewLocalStack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := ipls.NewServer()
	if err := srv.RegisterStorage(net); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterDirectory(dir); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := ipls.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sess, err := ipls.NewSession(cfg, client, client)
	if err != nil {
		t.Fatal(err)
	}
	deltas := map[string][]float64{"t0": make([]float64, 8), "t1": make([]float64, 8)}
	res, err := sess.RunIteration(context.Background(), 0, deltas, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incomplete) > 0 {
		t.Fatalf("facade TCP run incomplete: %v", res.Incomplete)
	}
}

// TestFacadeShardedDirectory exercises the §VI sharded directory through
// the facade.
func TestFacadeShardedDirectory(t *testing.T) {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "facade-shard",
		ModelDim:                12,
		Partitions:              3,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1"},
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, net, _, err := ipls.NewLocalStack(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := ipls.NewShardedDirectory(cfg.TaskID, 2, cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := ipls.NewSession(cfg, net, sharded)
	if err != nil {
		t.Fatal(err)
	}
	deltas := map[string][]float64{"t0": make([]float64, 12), "t1": make([]float64, 12)}
	if _, err := sess.RunIteration(context.Background(), 0, deltas, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeResilience runs a full iteration through the public resilience
// wrappers with a storage replica crashed mid-task, and checks the
// IsRetryable export agrees with the transport's wire-mapped sentinels.
func TestFacadeResilience(t *testing.T) {
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "facade-resilience",
		ModelDim:                12,
		Partitions:              2,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1", "s2"},
		ProvidersPerAggregator:  1,
		TTrain:                  2 * time.Second,
		TSync:                   2 * time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, net, dir, err := ipls.NewLocalStack(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	pol := ipls.DefaultRetryPolicy()
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 4 * time.Millisecond
	client := ipls.WithResilience(net, cfg, pol)
	sess, err := ipls.NewSession(cfg, client.Storage(), ipls.WithDirectoryResilience(dir, pol))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ipls.ParseFaultPlan("crash:s1@iter1")
	if err != nil {
		t.Fatal(err)
	}
	deltas := map[string][]float64{"t0": make([]float64, 12), "t1": make([]float64, 12)}
	for iter := 0; iter < 3; iter++ {
		if _, err := plan.Apply(net, iter); err != nil {
			t.Fatal(err)
		}
		if _, err := sess.RunIteration(context.Background(), iter, deltas, nil); err != nil {
			t.Fatalf("iteration %d with s1 down: %v", iter, err)
		}
	}
	if !ipls.IsRetryable(fmt.Errorf("wrapped: %w", context.DeadlineExceeded)) {
		t.Error("deadline exceeded should be retryable")
	}
	if ipls.IsRetryable(context.Canceled) {
		t.Error("caller cancellation must not be retried")
	}
}

// TestFacadeDurableStorage exercises the storage-backend surface purely
// through the public API: options-struct network construction, the on-disk
// BlockStore, and a durable stack that survives a close/reopen cycle.
func TestFacadeDurableStorage(t *testing.T) {
	dir := t.TempDir()

	// Standalone disk store round-trips and survives reopen.
	bs, err := ipls.OpenFSStore(dir + "/standalone")
	if err != nil {
		t.Fatal(err)
	}
	c, err := bs.Put(context.Background(), []byte("facade block"))
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	bs, err = ipls.OpenFSStore(dir + "/standalone")
	if err != nil {
		t.Fatal(err)
	}
	defer bs.Close()
	if got, err := bs.Get(context.Background(), c); err != nil || string(got) != "facade block" {
		t.Fatalf("reopened store Get = %q, %v", got, err)
	}

	// Options-struct constructor with a disk backend.
	net, err := ipls.NewStorageNetworkOpts(ipls.StorageNetworkOptions{
		Replicas: 2,
		Store:    ipls.StoreConfig{Backend: ipls.BackendFS, Dir: dir + "/net", CacheBlocks: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.AddNode("s0")
	net.AddNode("s1")
	if _, err := net.Put(context.Background(), "s0", []byte("replicated")); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}

	// Durable stack: close, reopen, state restored.
	cfg, err := ipls.NewConfig(ipls.TaskSpec{
		TaskID:                  "facade-durable",
		ModelDim:                8,
		Partitions:              1,
		Trainers:                []string{"t0", "t1"},
		AggregatorsPerPartition: 1,
		StorageNodes:            []string{"s0", "s1"},
		TTrain:                  time.Second,
		TSync:                   time.Second,
		PollInterval:            time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stack, err := ipls.OpenDurableStack(cfg, ipls.DurableOptions{StoreDir: dir + "/stack", Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stack.Restored() {
		t.Fatal("fresh stack claims to be restored")
	}
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}
	stack, err = ipls.OpenDurableStack(cfg, ipls.DurableOptions{StoreDir: dir + "/stack", Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if !stack.Restored() {
		t.Fatal("reopened stack did not restore the snapshot")
	}
}
